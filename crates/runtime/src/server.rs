//! The multi-reactor [`Server`]: a non-blocking TCP listener fanning accepted
//! connections out across worker [`Reactor`]s.
//!
//! ```text
//!            TcpListener (non-blocking, its own mini event loop)
//!                │ accept
//!                ▼
//!     two-choice least-loaded balancer        (sample 2 workers, pick the
//!                │                             one with fewer live conns)
//!      ┌─────────┴─────────┐
//!      ▼                   ▼
//!  worker reactor 0 …  worker reactor N-1     (one thread + epoll set each)
//!      │                   │
//!      └── Endpoint per connection, sessions multiplexed inside
//! ```
//!
//! The balancer is the "power of two choices" policy: sampling two reactors
//! and picking the less loaded one keeps the maximum load within
//! `O(log log n)` of the mean — exponentially better than one random choice —
//! while touching only two counters per accept. (See Walzer's *"What if we
//! tried Less Power?"* in PAPERS.md for the surrounding theory; the same
//! imbalance-vs-probes trade-off the workspace's sharded IBLTs lean on.)
//!
//! Each worker owns one single-threaded [`Reactor`] plus one [`TcpService`]
//! instance (built by the factory passed to [`Server::bind`]); accepted
//! streams are handed over through a mutex-guarded intake and a reactor
//! [`Waker`](crate::Waker). Sessions therefore never cross threads after
//! registration, which is what lets the endpoint layer stay `!Send`.

use crate::poller::{Backend, Interest, Poller};
use crate::reactor::{ConnId, Reactor, ReactorConfig};
use crate::sys;
use recon_base::rng::Xoshiro256;
use recon_base::ReconError;
use recon_protocol::{Endpoint, StreamTransport};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// The transport a served TCP connection runs on.
pub type TcpTransport = StreamTransport<TcpStream, TcpStream>;
/// The endpoint a served TCP connection runs on.
pub type TcpEndpoint = Endpoint<TcpTransport>;

/// Per-worker protocol logic a [`Server`] runs. One instance per worker
/// thread, so implementations need `Send` but never `Sync`; shared read-only
/// state (the authoritative dataset) travels in an `Arc` inside the factory.
pub trait TcpService: Send + 'static {
    /// Install the local halves of this connection's sessions. Runs before the
    /// connection joins the reactor, so everything registered here is covered
    /// by the per-session deadlines.
    fn register(&mut self, peer: SocketAddr, endpoint: &mut TcpEndpoint) -> Result<(), ReconError>;

    /// The connection joined worker `conn`'s reactor.
    fn on_accepted(&mut self, _conn: ConnId, _peer: SocketAddr) {}

    /// The connection was pumped by a readiness event: harvest finished
    /// sessions (`take_outcome` / `close`) here. A connection retires once
    /// every session is closed and its output has drained. The default
    /// implementation is [`Endpoint::close_finished`] — retire everything
    /// finished, discarding outcomes and stats, allocation-free — right for
    /// fire-and-forget serving (an Alice side whose parties produce no
    /// output); override it to collect outcomes.
    fn on_progress(&mut self, _conn: ConnId, endpoint: &mut TcpEndpoint) {
        endpoint.close_finished();
    }

    /// The connection retired; `result` is `Ok` for a clean close.
    fn on_closed(
        &mut self,
        _conn: ConnId,
        _endpoint: &TcpEndpoint,
        _result: &Result<(), ReconError>,
    ) {
    }
}

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of worker reactors (threads). At least 1.
    pub workers: usize,
    /// Per-session deadline applied by every worker reactor.
    pub session_deadline: Option<Duration>,
    /// Pin the poller backend for the acceptor and all workers.
    pub backend: Option<Backend>,
    /// Seed for the balancer's two random worker choices.
    pub accept_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4),
            session_deadline: Some(Duration::from_secs(30)),
            backend: None,
            accept_seed: 0x2C01CE5,
        }
    }
}

/// What a [`Server`] did over its lifetime, returned by [`Server::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections each worker retired cleanly, in worker order.
    pub served_per_worker: Vec<u64>,
    /// Connections that retired with an error (including registration
    /// failures), across all workers.
    pub failed: u64,
}

impl ServerStats {
    /// Total connections retired cleanly.
    pub fn served(&self) -> u64 {
        self.served_per_worker.iter().sum()
    }
}

struct WorkerShared {
    intake: Mutex<Vec<(TcpStream, SocketAddr)>>,
    /// Live connections assigned to this worker (queued or in its reactor) —
    /// the balancer's load signal.
    load: AtomicU64,
    /// Cleared when the worker's loop returns *or unwinds* (panicking service
    /// callbacks included), so the balancer stops routing to a dead worker.
    alive: AtomicBool,
}

/// Marks the worker dead on every exit path, including panics.
struct AliveGuard<'a>(&'a AtomicBool);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

struct WorkerReport {
    served: u64,
    failed: u64,
}

/// A listening multi-reactor server; see the module docs. Runs until
/// [`Server::shutdown`].
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepting_done: Arc<AtomicBool>,
    accept_wake: std::io::PipeWriter,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<WorkerReport>>,
    worker_wakers: Vec<crate::reactor::Waker>,
    shared: Vec<Arc<WorkerShared>>,
}

fn io_err(context: &str, e: std::io::Error) -> ReconError {
    ReconError::Transport(format!("{context}: {e}"))
}

/// Tear down already-spawned worker threads on a failed `Server::bind`.
/// Without `accepting_done` the workers' exit condition could never hold and
/// they would spin (and leak their reactors) forever.
fn abort_workers<'a>(
    stop: &AtomicBool,
    accepting_done: &AtomicBool,
    wakers: impl IntoIterator<Item = &'a crate::reactor::Waker>,
    workers: Vec<std::thread::JoinHandle<WorkerReport>>,
) {
    stop.store(true, Ordering::SeqCst);
    accepting_done.store(true, Ordering::SeqCst);
    for waker in wakers {
        waker.wake();
    }
    for handle in workers {
        let _ = handle.join();
    }
}

impl Server {
    /// Bind `addr` and start serving: one acceptor thread plus
    /// `config.workers` reactor threads, each running the service returned by
    /// `factory(worker_index)`.
    pub fn bind<S: TcpService>(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        mut factory: impl FnMut(usize) -> S,
    ) -> Result<Server, ReconError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        listener.set_nonblocking(true).map_err(|e| io_err("listener nonblock", e))?;
        let local_addr = listener.local_addr().map_err(|e| io_err("local addr", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepting_done = Arc::new(AtomicBool::new(false));
        let workers_n = config.workers.max(1);

        let mut shared = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        let (waker_tx, waker_rx) = mpsc::channel();
        for worker in 0..workers_n {
            let worker_shared = Arc::new(WorkerShared {
                intake: Mutex::new(Vec::new()),
                load: AtomicU64::new(0),
                alive: AtomicBool::new(true),
            });
            shared.push(Arc::clone(&worker_shared));
            let reactor_config = ReactorConfig {
                session_deadline: config.session_deadline,
                backend: config.backend,
                // Disjoint id ranges so connection ids are process-unique.
                first_conn_id: (worker as ConnId) << 48,
            };
            let service = factory(worker);
            let stop = Arc::clone(&stop);
            let accepting_done = Arc::clone(&accepting_done);
            let waker_tx = waker_tx.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(reactor_config, worker_shared, service, stop, accepting_done, waker_tx)
            }));
        }
        drop(waker_tx);
        // The reactors build their wakers on their own threads; collect them
        // before accepting the first connection.
        let mut worker_wakers: Vec<(usize, crate::reactor::Waker)> =
            waker_rx.iter().take(workers_n).collect();
        if worker_wakers.len() < workers_n {
            abort_workers(&stop, &accepting_done, worker_wakers.iter().map(|(_, w)| w), workers);
            return Err(ReconError::Transport("a worker reactor failed to start".into()));
        }
        worker_wakers.sort_by_key(|(worker, _)| *worker);
        let worker_wakers: Vec<_> = worker_wakers.into_iter().map(|(_, waker)| waker).collect();

        let (accept_wake_rx, accept_wake) = match std::io::pipe() {
            Ok(pipe) => pipe,
            Err(e) => {
                abort_workers(&stop, &accepting_done, &worker_wakers, workers);
                return Err(io_err("acceptor wake pipe", e));
            }
        };
        if let Err(e) = sys::set_nonblocking(accept_wake_rx.as_raw_fd()) {
            abort_workers(&stop, &accepting_done, &worker_wakers, workers);
            return Err(io_err("acceptor wake nonblock", e));
        }
        let acceptor = {
            let stop = Arc::clone(&stop);
            let shared = shared.clone();
            let wakers = worker_wakers.clone();
            let backend = config.backend;
            let seed = config.accept_seed;
            std::thread::spawn(move || {
                accept_loop(listener, accept_wake_rx, stop, shared, wakers, backend, seed)
            })
        };

        Ok(Server {
            local_addr,
            stop,
            accepting_done,
            accept_wake,
            acceptor: Some(acceptor),
            workers,
            worker_wakers,
            shared,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live connections currently assigned to each worker.
    pub fn loads(&self) -> Vec<u64> {
        self.shared.iter().map(|s| s.load.load(Ordering::SeqCst)).collect()
    }

    /// Stop accepting, let in-flight connections finish (bounded by their
    /// session deadlines), and join every thread.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop.store(true, Ordering::SeqCst);
        let _ = (&self.accept_wake).write(&[1]);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Only after the acceptor has fully exited may workers treat an empty
        // intake as final — otherwise a connection accepted during shutdown
        // could land in the intake of a worker that already returned.
        self.accepting_done.store(true, Ordering::SeqCst);
        for waker in &self.worker_wakers {
            waker.wake();
        }
        let mut stats = ServerStats { served_per_worker: Vec::new(), failed: 0 };
        for handle in self.workers.drain(..) {
            match handle.join() {
                Ok(report) => {
                    stats.served_per_worker.push(report.served);
                    stats.failed += report.failed;
                }
                Err(_) => {
                    stats.served_per_worker.push(0);
                    stats.failed += 1;
                }
            }
        }
        stats
    }
}

/// One worker: a reactor, its service, and the intake handshake.
fn worker_loop<S: TcpService>(
    config: ReactorConfig,
    shared: Arc<WorkerShared>,
    mut service: S,
    stop: Arc<AtomicBool>,
    accepting_done: Arc<AtomicBool>,
    waker_tx: mpsc::Sender<(usize, crate::reactor::Waker)>,
) -> WorkerReport {
    // Dropped on every exit path (panics included): tells the balancer to
    // stop routing connections here.
    let _alive = AliveGuard(&shared.alive);
    let worker = (config.first_conn_id >> 48) as usize;
    let mut report = WorkerReport { served: 0, failed: 0 };
    let Ok(mut reactor) = Reactor::<TcpTransport>::new(config) else {
        // Dropping the sender makes bind() fail loudly.
        return report;
    };
    if waker_tx.send((worker, reactor.waker())).is_err() {
        return report;
    }
    drop(waker_tx);

    loop {
        // Adopt whatever the acceptor queued.
        let streams: Vec<(TcpStream, SocketAddr)> =
            std::mem::take(&mut *shared.intake.lock().expect("intake lock"));
        for (stream, peer) in streams {
            match adopt(&mut reactor, &mut service, stream, peer) {
                Ok(conn) => service.on_accepted(conn, peer),
                Err(_) => {
                    shared.load.fetch_sub(1, Ordering::SeqCst);
                    report.failed += 1;
                }
            }
        }

        // Hand back retired connections.
        for finished in reactor.take_finished() {
            shared.load.fetch_sub(1, Ordering::SeqCst);
            service.on_closed(finished.conn, &finished.endpoint, &finished.result);
            match finished.result {
                Ok(()) => report.served += 1,
                Err(_) => report.failed += 1,
            }
        }

        // Exit only once the acceptor is gone for good: until then a fresh
        // connection could still land in this worker's intake.
        if stop.load(Ordering::SeqCst)
            && accepting_done.load(Ordering::SeqCst)
            && reactor.is_empty()
            && shared.intake.lock().expect("intake lock").is_empty()
        {
            return report;
        }

        // The waker interrupts this for intake and shutdown; the cap is a
        // safety tick so a missed wake can never park the worker for good.
        if reactor
            .turn(Some(Duration::from_millis(200)), |conn, endpoint| {
                service.on_progress(conn, endpoint)
            })
            .is_err()
        {
            // A poller-level failure is unrecoverable for this worker.
            report.failed += 1;
            return report;
        }
    }
}

fn adopt<S: TcpService>(
    reactor: &mut Reactor<TcpTransport>,
    service: &mut S,
    stream: TcpStream,
    peer: SocketAddr,
) -> Result<ConnId, ReconError> {
    stream.set_nonblocking(true).map_err(|e| io_err("conn nonblock", e))?;
    // Frames are small and latency-coupled (a session round-trips); letting
    // Nagle batch them against delayed ACKs costs tens of ms per exchange.
    stream.set_nodelay(true).map_err(|e| io_err("conn nodelay", e))?;
    let reader = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
    let mut endpoint = Endpoint::new(StreamTransport::new(reader, stream));
    service.register(peer, &mut endpoint)?;
    reactor.insert(endpoint)
}

/// Dial `addr` and wrap the stream as a non-blocking, no-delay
/// [`TcpEndpoint`] — the client-side counterpart of the server's adoption
/// path, ready for [`drive_endpoint`](crate::drive_endpoint).
pub fn connect_endpoint(addr: impl ToSocketAddrs) -> Result<TcpEndpoint, ReconError> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    stream.set_nonblocking(true).map_err(|e| io_err("conn nonblock", e))?;
    stream.set_nodelay(true).map_err(|e| io_err("conn nodelay", e))?;
    let reader = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
    Ok(Endpoint::new(StreamTransport::new(reader, stream)))
}

/// The acceptor: its own tiny event loop over the listener plus a wake pipe,
/// pushing each accepted stream to the less loaded of two sampled workers.
fn accept_loop(
    listener: TcpListener,
    wake_rx: std::io::PipeReader,
    stop: Arc<AtomicBool>,
    shared: Vec<Arc<WorkerShared>>,
    wakers: Vec<crate::reactor::Waker>,
    backend: Option<Backend>,
    seed: u64,
) {
    let mut wake_rx = wake_rx;
    let mut poller = match backend {
        Some(backend) => Poller::with_backend(backend),
        None => Poller::new(),
    }
    .expect("acceptor poller");
    poller.register(listener.as_raw_fd(), 0, Interest::READ).expect("register listener");
    poller.register(wake_rx.as_raw_fd(), 1, Interest::READ).expect("register acceptor waker");
    let mut rng = Xoshiro256::new(seed);
    let mut events = Vec::new();

    while !stop.load(Ordering::SeqCst) {
        if poller.wait(&mut events, Some(Duration::from_millis(500))).is_err() {
            break;
        }
        let mut drain = [0u8; 64];
        while matches!(wake_rx.read(&mut drain), Ok(n) if n > 0) {}
        let mut transient_error = false;
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let Some(worker) = pick_two_choices(&shared, &mut rng) else {
                        // Every worker is dead; dropping the stream resets the
                        // client rather than parking it in a dead intake.
                        drop(stream);
                        continue;
                    };
                    shared[worker].load.fetch_add(1, Ordering::SeqCst);
                    shared[worker].intake.lock().expect("intake lock").push((stream, peer));
                    wakers[worker].wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Aborted handshakes, fd exhaustion (EMFILE), and other
                // transient errors: keep serving, but back off below.
                Err(_) => {
                    transient_error = true;
                    break;
                }
            }
        }
        if transient_error {
            // The pending connection keeps the listener level-triggered
            // readable, so an un-accepted error (EMFILE until fds free up)
            // would otherwise hot-loop this thread. poll(2) with no
            // descriptors is a pure kernel-timed wait.
            let _ = sys::poll_fds(&mut [], 50);
        }
    }
}

/// Sample two distinct *live* workers uniformly and return the less loaded one
/// (ties go to the first sample) — the classic power-of-two-choices balancer.
/// `None` when no worker is alive.
fn pick_two_choices(shared: &[Arc<WorkerShared>], rng: &mut Xoshiro256) -> Option<usize> {
    let alive: Vec<usize> =
        (0..shared.len()).filter(|&w| shared[w].alive.load(Ordering::SeqCst)).collect();
    let n = alive.len();
    match n {
        0 => None,
        1 => Some(alive[0]),
        _ => {
            let i = rng.next_below(n as u64) as usize;
            let mut j = rng.next_below(n as u64 - 1) as usize;
            if j >= i {
                j += 1;
            }
            let (first, second) = (alive[i], alive[j]);
            if shared[second].load.load(Ordering::SeqCst)
                < shared[first].load.load(Ordering::SeqCst)
            {
                Some(second)
            } else {
                Some(first)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::drive_endpoint;
    use recon_protocol::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
    use recon_protocol::{Envelope, Role};

    struct EchoNumbers;

    impl TcpService for EchoNumbers {
        fn register(
            &mut self,
            _peer: SocketAddr,
            endpoint: &mut TcpEndpoint,
        ) -> Result<(), ReconError> {
            // One Alice session per connection, payload fixed by protocol.
            let alice = AmplifiedSender::new(4, |attempt| {
                Ok(Envelope::round(1, "digest", &(1000 + attempt)))
            })
            .expect("sender");
            endpoint.register(0, Role::Alice, alice)
        }
        // on_progress: the default close-all-finished harvest is exactly right.
    }

    fn run_client(addr: SocketAddr, retries: u64) -> u64 {
        let mut endpoint = connect_endpoint(addr).expect("connect");
        let bob = AmplifiedReceiver::new(
            4,
            move |attempt, env: Envelope| {
                if attempt < retries {
                    Err(ReconError::ChecksumFailure)
                } else {
                    env.decode_payload::<u64>()
                }
            },
            |_| true,
            |_| Envelope::control(2, "retry", &()),
            Exhaust::LastError,
        );
        endpoint.register(0, Role::Bob, bob).expect("register");
        let mut recovered = None;
        drive_endpoint(&mut endpoint, &crate::reactor::ReactorConfig::default(), |endpoint| {
            match endpoint.take_outcome::<u64>(0) {
                Some(outcome) => {
                    recovered = Some(outcome?.recovered);
                    Ok(true)
                }
                None => Ok(false),
            }
        })
        .expect("client drive");
        recovered.expect("recovered")
    }

    #[test]
    fn two_worker_server_serves_concurrent_clients() {
        let config = ServerConfig {
            workers: 2,
            session_deadline: Some(Duration::from_secs(15)),
            backend: None,
            accept_seed: 7,
        };
        let server = Server::bind("127.0.0.1:0", config, |_| EchoNumbers).expect("bind");
        let addr = server.local_addr();

        let clients: Vec<_> =
            (0..8).map(|i| std::thread::spawn(move || run_client(addr, i % 3))).collect();
        for (i, client) in clients.into_iter().enumerate() {
            let recovered = client.join().expect("client thread");
            assert_eq!(recovered, 1000 + (i as u64 % 3));
        }
        let stats = server.shutdown();
        assert_eq!(stats.served(), 8, "{stats:?}");
        assert_eq!(stats.failed, 0, "{stats:?}");
        assert_eq!(stats.served_per_worker.len(), 2);
    }

    fn worker(load: u64, alive: bool) -> Arc<WorkerShared> {
        Arc::new(WorkerShared {
            intake: Mutex::new(Vec::new()),
            load: AtomicU64::new(load),
            alive: AtomicBool::new(alive),
        })
    }

    #[test]
    fn pick_two_choices_prefers_the_lighter_worker() {
        let shared: Vec<Arc<WorkerShared>> =
            (0..4).map(|i| worker(if i == 2 { 0 } else { 100 }, true)).collect();
        let mut rng = Xoshiro256::new(99);
        let mut hits = 0;
        for _ in 0..400 {
            if pick_two_choices(&shared, &mut rng) == Some(2) {
                hits += 1;
            }
        }
        // Worker 2 is in a sample pair with probability 1 - C(3,2)/C(4,2) = 1/2
        // and wins every pair it appears in.
        assert!((150..=250).contains(&hits), "two-choice skew off: {hits}/400");
    }

    #[test]
    fn pick_two_choices_never_routes_to_a_dead_worker() {
        let shared = vec![worker(50, true), worker(0, false), worker(60, true), worker(0, false)];
        let mut rng = Xoshiro256::new(5);
        for _ in 0..200 {
            let picked = pick_two_choices(&shared, &mut rng).expect("live workers exist");
            assert!(picked == 0 || picked == 2, "routed to dead worker {picked}");
        }
        // One survivor: always picked. None: refused.
        let one = vec![worker(9, false), worker(1, true)];
        assert_eq!(pick_two_choices(&one, &mut rng), Some(1));
        let none = vec![worker(0, false), worker(0, false)];
        assert_eq!(pick_two_choices(&none, &mut rng), None);
    }
}
