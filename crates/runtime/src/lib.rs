//! # recon-runtime
//!
//! The readiness-driven runtime under the workspace's sans-I/O protocol
//! stack: the layer that turns "a [`SessionCore`] never blocks" from a design
//! principle into served traffic. Built entirely on raw OS readiness APIs —
//! this workspace compiles with no external crates — it provides, bottom up:
//!
//! * [`sys`] — `extern "C"` bindings for `epoll`, `poll(2)`, `O_NONBLOCK`,
//!   `readv`/`writev` and `SO_REUSEPORT` listeners; the crate's only `unsafe`
//!   module, mirroring `crates/iblt/src/kernels.rs`.
//! * [`Poller`] — one blocking wait over many descriptors, with an epoll
//!   backend on Linux (level- or edge-triggered via [`Trigger`]) and a
//!   portable `poll(2)` fallback selected at runtime
//!   (`RECON_RUNTIME_FORCE_POLL`, or [`Poller::with_backend`] in code).
//! * [`TimerWheel`] — hashed-wheel deadlines for sessions that stall.
//! * [`Reactor`] — many multiplexed [`Endpoint`]s over [`Pollable`] stream
//!   transports, pumped only on readiness ([`Endpoint::poll_ready`]), with
//!   precise write-interest re-arming ([`Endpoint::is_write_blocked`]),
//!   per-session deadlines, and graceful `Fin` draining. Edge-triggered by
//!   default: the transports drain to `WouldBlock` on every event anyway, so
//!   the kernel skips re-scanning still-ready descriptors. [`drive_endpoint`]
//!   is the single-connection client-side loop on the same machinery.
//! * [`Server`] — N worker reactors serving TCP, accepting either on
//!   per-worker `SO_REUSEPORT` listeners (sharded, the Linux default) or via
//!   a central listener with two-choice least-loaded balancing
//!   ([`AcceptMode`]), each worker recycling connection buffers through a
//!   `BufferPool`.
//!
//! What stays out: protocol logic (the parties, sessions and accounting live
//! in `recon-protocol` and the family crates, unchanged), and any form of
//! work-stealing between reactors — sessions are single-threaded state
//! machines, so a connection lives its whole life on the worker the balancer
//! picked.
//!
//! [`SessionCore`]: recon_protocol::SessionCore
//! [`Endpoint`]: recon_protocol::Endpoint
//! [`Endpoint::poll_ready`]: recon_protocol::Endpoint::poll_ready
//! [`Endpoint::is_write_blocked`]: recon_protocol::Endpoint::is_write_blocked
//! [`Pollable`]: recon_protocol::Pollable

#![cfg(unix)]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod poller;
pub mod reactor;
pub mod server;
pub mod sys;
pub mod timer;

pub use poller::{Backend, Event, Interest, Poller, Trigger};
pub use reactor::{
    drive_endpoint, drive_endpoint_with_retry, ConnId, Finished, Reactor, ReactorConfig, Waker,
};
pub use server::{
    connect_endpoint, AcceptMode, Server, ServerConfig, ServerStats, TcpEndpoint, TcpService,
    TcpTransport,
};
#[cfg(target_os = "linux")]
pub use sys::reuseport_listener;
pub use sys::{set_nonblocking, RawFdIo};
pub use timer::TimerWheel;
