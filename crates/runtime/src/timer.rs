//! A hashed timer wheel for per-session deadlines.
//!
//! Deadlines in a reactor are many, coarse, and usually cancelled (a session
//! that finishes in time never fires) — the classic fit for a timer wheel
//! rather than a comparison-based priority queue: insertion is O(1) into the
//! slot its tick hashes to, and expiry touches only the slots the clock has
//! passed since the previous turn. Entries whose deadline lies a full wheel
//! revolution (or more) ahead simply stay in their slot; expiry re-checks the
//! stored absolute deadline, so far-future entries ride around the wheel
//! untouched until their round comes up.
//!
//! Cancellation is lazy, reactor-style: the wheel stores plain tokens and the
//! owner decides at fire time whether the token still means anything (a
//! finished session's timer fires into the void). That keeps the wheel free of
//! back-references and the cancel path allocation-free.

use std::time::{Duration, Instant};

/// One pending deadline: when it is due and the caller's token.
#[derive(Debug, Clone)]
struct Entry<T> {
    deadline: Instant,
    token: T,
}

/// A fixed-granularity hashed timer wheel; see the module docs.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    granularity: Duration,
    origin: Instant,
    /// First tick not yet processed by [`TimerWheel::expire`].
    cursor: u64,
    len: usize,
    /// Cached earliest pending deadline, so the per-turn
    /// [`TimerWheel::next_deadline`] on the event-loop hot path is O(1);
    /// `None` means "unknown, recompute" (only after entries actually fired).
    earliest: Option<Instant>,
}

impl<T> TimerWheel<T> {
    /// A wheel of `slots` buckets, each covering `granularity` of time (one
    /// revolution spans `slots × granularity`).
    pub fn new(granularity: Duration, slots: usize) -> Self {
        assert!(!granularity.is_zero(), "granularity must be positive");
        Self {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            granularity,
            origin: Instant::now(),
            cursor: 0,
            len: 0,
            earliest: None,
        }
    }

    /// A wheel tuned for connection-serving deadlines: 10 ms ticks, 512 slots
    /// (a ~5 s revolution).
    pub fn for_connections() -> Self {
        Self::new(Duration::from_millis(10), 512)
    }

    /// Number of pending deadlines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no deadlines are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.origin);
        // Integer division by a Duration is not in std; nanos keep full range
        // for any realistic uptime (584 years of u64 nanoseconds).
        (since.as_nanos() / self.granularity.as_nanos()) as u64
    }

    /// Schedule `token` to fire once `deadline` has passed.
    pub fn insert(&mut self, deadline: Instant, token: T) {
        // Never behind the cursor: a deadline already in the past fires on the
        // next expire() sweep from the cursor's own slot.
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { deadline, token });
        self.len += 1;
        // Only *lower* a known minimum. A `None` cache means "unknown" (an
        // entry fired since the last recompute) — overwriting it with this
        // deadline could mask an earlier entry still parked in the wheel.
        if let Some(earliest) = self.earliest {
            if deadline < earliest {
                self.earliest = Some(deadline);
            }
        } else if self.len == 1 {
            // Empty wheel: the new entry is trivially the minimum.
            self.earliest = Some(deadline);
        }
    }

    /// The earliest pending deadline, if any — what bounds a poller's wait.
    /// O(1): served from a cached minimum maintained by `insert`/`expire`.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        if self.earliest.is_none() {
            self.earliest = self.slots.iter().flatten().map(|e| e.deadline).min();
        }
        self.earliest
    }

    /// Pop every deadline that has passed as of `now` into `due`, advancing
    /// the wheel. Only the slots between the previous call and `now` are
    /// touched; entries parked there for a later revolution are skipped (their
    /// absolute deadline has not passed).
    pub fn expire(&mut self, now: Instant, due: &mut Vec<T>) {
        if self.len == 0 {
            self.cursor = self.tick_of(now);
            return;
        }
        let now_tick = self.tick_of(now);
        let slots = self.slots.len() as u64;
        // One full revolution visits every slot; more wraps add nothing.
        let span = (now_tick - self.cursor + 1).min(slots);
        let mut fired = false;
        for tick in self.cursor..self.cursor + span {
            let slot = (tick % slots) as usize;
            let mut i = 0;
            while i < self.slots[slot].len() {
                if self.slots[slot][i].deadline <= now {
                    due.push(self.slots[slot].swap_remove(i).token);
                    self.len -= 1;
                    fired = true;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick;
        if fired {
            // The cached minimum may have fired; recompute lazily on the next
            // next_deadline() call instead of eagerly every sweep.
            self.earliest = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_fire_in_their_slot_not_before() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16);
        let now = Instant::now();
        wheel.insert(now + Duration::from_millis(35), "late");
        wheel.insert(now + Duration::from_millis(5), "early");
        assert_eq!(wheel.len(), 2);

        let mut due = Vec::new();
        wheel.expire(now, &mut due);
        assert!(due.is_empty(), "nothing is due yet");

        wheel.expire(now + Duration::from_millis(12), &mut due);
        assert_eq!(due, vec!["early"]);
        due.clear();

        wheel.expire(now + Duration::from_millis(40), &mut due);
        assert_eq!(due, vec!["late"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_future_entries_survive_full_revolutions() {
        // 4 slots x 10ms: a 100ms deadline wraps the wheel twice.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4);
        let now = Instant::now();
        wheel.insert(now + Duration::from_millis(100), "far");
        let mut due = Vec::new();
        for step in 1..=9 {
            wheel.expire(now + Duration::from_millis(step * 10), &mut due);
            assert!(due.is_empty(), "fired {}ms early", 100 - step * 10);
        }
        wheel.expire(now + Duration::from_millis(101), &mut due);
        assert_eq!(due, vec!["far"]);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_sweep() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let now = Instant::now();
        // Advance the cursor first so the insert lands behind it.
        let mut due: Vec<&str> = Vec::new();
        wheel.expire(now + Duration::from_millis(50), &mut due);
        wheel.insert(now, "overdue");
        wheel.expire(now + Duration::from_millis(50), &mut due);
        assert_eq!(due, vec!["overdue"]);
    }

    #[test]
    fn next_deadline_reports_the_minimum() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        assert_eq!(wheel.next_deadline(), None);
        let now = Instant::now();
        wheel.insert(now + Duration::from_millis(80), "b");
        wheel.insert(now + Duration::from_millis(20), "a");
        let next = wheel.next_deadline().unwrap();
        assert!(next <= now + Duration::from_millis(20));
        assert!(next > now);
    }

    #[test]
    fn cached_minimum_survives_fire_then_far_insert() {
        // Regression: after A fires (cache invalidated), inserting a far
        // deadline must not mask B, which is still parked in the wheel.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16);
        let now = Instant::now();
        wheel.insert(now + Duration::from_millis(20), "a");
        wheel.insert(now + Duration::from_millis(100), "b");
        let mut due = Vec::new();
        wheel.expire(now + Duration::from_millis(30), &mut due);
        assert_eq!(due, vec!["a"]);
        wheel.insert(now + Duration::from_secs(5), "c");
        let next = wheel.next_deadline().expect("two entries pending");
        assert!(
            next <= now + Duration::from_millis(100),
            "cached minimum skipped the parked entry"
        );
    }

    #[test]
    fn idle_expiry_keeps_the_cursor_current() {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(Duration::from_millis(1), 4);
        let now = Instant::now();
        let mut due = Vec::new();
        // A long idle gap (many revolutions) with no entries must not make the
        // next expire() sweep the whole gap slot by slot.
        wheel.expire(now + Duration::from_secs(60), &mut due);
        wheel.insert(now + Duration::from_secs(60), 1);
        wheel.expire(now + Duration::from_secs(61), &mut due);
        assert_eq!(due, vec![1]);
    }
}
