//! Raw OS readiness primitives: `epoll` (Linux), `poll(2)` (any Unix), and the
//! few descriptor chores around them (`O_NONBLOCK`, raw-fd I/O for stdio).
//!
//! The workspace builds with no external crates, so the bindings are declared
//! here directly against the C library every Rust std program already links.
//! Like `crates/iblt/src/kernels.rs`, this is the one module in its crate where
//! `unsafe` is allowed: every call either passes buffers whose lengths are
//! taken from live Rust slices or manipulates descriptors this module owns,
//! and everything above it speaks safe Rust.

// The only unsafe code in this crate: FFI calls into the C library, each
// operating strictly on caller-provided slices or owned descriptors.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_short, c_ulong, c_void};

// ---------------------------------------------------------------------------
// C library declarations
// ---------------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>`. Identical layout on every Unix.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch (negative entries are ignored by the kernel).
    pub fd: c_int,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: c_short,
    /// Returned events.
    pub revents: c_short,
}

/// Readable (or peer hung up with data still buffered).
pub const POLLIN: c_short = 0x001;
/// Writable without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: c_short = 0x010;

/// `struct epoll_event` from `<sys/epoll.h>`. The kernel ABI packs it on
/// x86_64 only; every other architecture uses natural alignment.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Ready/requested event mask ([`EPOLLIN`] / [`EPOLLOUT`] / ...).
    pub events: u32,
    /// Caller-chosen token handed back verbatim with each event.
    pub data: u64,
}

/// Readable.
#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
/// Writable.
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported).
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported).
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half — reading will drain then return EOF.
#[cfg(target_os = "linux")]
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery: report each readiness transition once instead of
/// re-reporting while the condition holds. A consumer must drain the
/// descriptor to `WouldBlock` on every event or risk never hearing again.
#[cfg(target_os = "linux")]
pub const EPOLLET: u32 = 1 << 31;

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

/// `struct iovec` from `<sys/uio.h>`: one scatter/gather segment.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct IoVec {
    base: *mut c_void,
    len: usize,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn readv(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;

    #[cfg(target_os = "linux")]
    fn epoll_create1(flags: c_int) -> c_int;
    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    #[cfg(target_os = "linux")]
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;

    #[cfg(target_os = "linux")]
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    #[cfg(target_os = "linux")]
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
    #[cfg(target_os = "linux")]
    fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
    #[cfg(target_os = "linux")]
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

fn cvt(res: c_int) -> io::Result<c_int> {
    if res < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(res)
    }
}

// ---------------------------------------------------------------------------
// Safe wrappers
// ---------------------------------------------------------------------------

/// A descriptor this module owns and closes on drop (the epoll instance).
#[derive(Debug)]
pub struct OwnedSysFd(RawFd);

impl OwnedSysFd {
    /// The raw descriptor number.
    pub fn raw(&self) -> RawFd {
        self.0
    }
}

impl Drop for OwnedSysFd {
    fn drop(&mut self) {
        // Nothing useful to do with a close error on an fd we own exclusively.
        unsafe { close(self.0) };
    }
}

/// A new epoll instance (close-on-exec).
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<OwnedSysFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(OwnedSysFd(fd))
}

#[cfg(target_os = "linux")]
fn epoll_ctl_op(ep: &OwnedSysFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data: token };
    cvt(unsafe { epoll_ctl(ep.raw(), op, fd, &mut event) })?;
    Ok(())
}

/// Add `fd` to the epoll set with the given event mask and token.
#[cfg(target_os = "linux")]
pub fn epoll_add(ep: &OwnedSysFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl_op(ep, EPOLL_CTL_ADD, fd, events, token)
}

/// Change `fd`'s event mask / token.
#[cfg(target_os = "linux")]
pub fn epoll_modify(ep: &OwnedSysFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl_op(ep, EPOLL_CTL_MOD, fd, events, token)
}

/// Remove `fd` from the epoll set.
#[cfg(target_os = "linux")]
pub fn epoll_remove(ep: &OwnedSysFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl_op(ep, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Wait for events; `timeout_ms < 0` blocks indefinitely. Returns how many
/// entries of `events` were filled. Retries on `EINTR`.
#[cfg(target_os = "linux")]
pub fn epoll_wait_events(
    ep: &OwnedSysFd,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    loop {
        let n =
            unsafe { epoll_wait(ep.raw(), events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `poll(2)` over the given descriptors; `timeout_ms < 0` blocks indefinitely.
/// Returns how many entries have non-zero `revents`. Retries on `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// How many scatter/gather segments [`readv_fd`] / [`writev_fd`] pass to the
/// kernel per call. The runtime's transports coalesce into at most two
/// segments (a ring buffer's two slices); anything beyond the cap is simply
/// not submitted this call, which the `Read`/`Write` contracts already allow.
const IOV_STACK: usize = 8;

/// Scatter-read into `bufs` with one `readv` syscall. Returns the total bytes
/// read across segments (0 is EOF); `WouldBlock` surfaces like `read`.
pub fn readv_fd(fd: RawFd, bufs: &mut [io::IoSliceMut<'_>]) -> io::Result<usize> {
    let n = bufs.len().min(IOV_STACK);
    let mut iov = [IoVec { base: std::ptr::null_mut(), len: 0 }; IOV_STACK];
    for (slot, buf) in iov.iter_mut().zip(bufs[..n].iter_mut()) {
        slot.base = buf.as_mut_ptr().cast::<c_void>();
        slot.len = buf.len();
    }
    let res = unsafe { readv(fd, iov.as_ptr(), n as c_int) };
    if res < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(res as usize)
    }
}

/// Gather-write from `bufs` with one `writev` syscall. Returns the total bytes
/// the kernel accepted across segments; `WouldBlock` surfaces like `write`.
pub fn writev_fd(fd: RawFd, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
    let n = bufs.len().min(IOV_STACK);
    let mut iov = [IoVec { base: std::ptr::null_mut(), len: 0 }; IOV_STACK];
    for (slot, buf) in iov.iter_mut().zip(&bufs[..n]) {
        slot.base = buf.as_ptr() as *mut c_void;
        slot.len = buf.len();
    }
    let res = unsafe { writev(fd, iov.as_ptr(), n as c_int) };
    if res < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(res as usize)
    }
}

/// `struct sockaddr_in` from `<netinet/in.h>`; port and address are stored as
/// network-order byte arrays so no host/network conversion can be missed.
#[cfg(target_os = "linux")]
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port: [u8; 2],
    addr: [u8; 4],
    zero: [u8; 8],
}

/// `struct sockaddr_in6` from `<netinet/in.h>`.
#[cfg(target_os = "linux")]
#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    port: [u8; 2],
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// Build a non-blocking TCP listener with `SO_REUSEPORT` set *before* `bind`,
/// so several listeners — one per server worker — can share one port and let
/// the kernel spread incoming connections across them. Returned as a std
/// [`std::net::TcpListener`] so the ordinary `accept` path applies.
#[cfg(target_os = "linux")]
pub fn reuseport_listener(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOCK_NONBLOCK: c_int = 0o4000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;
    const SO_REUSEPORT: c_int = 15;

    let family = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
    let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0) })?;
    // Owned wrapper so every early return below closes the descriptor.
    let fd = OwnedSysFd(fd);
    let one: c_int = 1;
    let optlen = std::mem::size_of::<c_int>() as u32;
    for opt in [SO_REUSEADDR, SO_REUSEPORT] {
        cvt(unsafe {
            setsockopt(fd.raw(), SOL_SOCKET, opt, (&one as *const c_int).cast::<c_void>(), optlen)
        })?;
    }
    match addr {
        std::net::SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be_bytes(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            cvt(unsafe {
                bind(
                    fd.raw(),
                    (&sa as *const SockAddrIn).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            })?;
        }
        std::net::SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be_bytes(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            cvt(unsafe {
                bind(
                    fd.raw(),
                    (&sa as *const SockAddrIn6).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            })?;
        }
    }
    cvt(unsafe { listen(fd.raw(), 1024) })?;
    let raw = fd.raw();
    // Ownership moves into the TcpListener; OwnedSysFd must not double-close.
    std::mem::forget(fd);
    Ok(unsafe { <std::net::TcpListener as std::os::fd::FromRawFd>::from_raw_fd(raw) })
}

/// Switch `fd` to non-blocking mode (`O_NONBLOCK`), preserving its other flags.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    if flags & O_NONBLOCK == 0 {
        cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    }
    Ok(())
}

/// Unbuffered `Read`/`Write`/`AsRawFd` over a borrowed raw descriptor.
///
/// Exists for wiring a process's own stdio pipes into a [`StreamTransport`]:
/// `std::io::Stdout` interposes a `LineWriter` whose internal buffer would hide
/// bytes from the transport's `has_pending_out` accounting (a readiness driver
/// would disarm write interest while bytes still sat in libstd's buffer), so
/// the reactor path talks to the descriptors directly. The descriptor is
/// *borrowed*: dropping this does not close it.
///
/// [`StreamTransport`]: recon_protocol::StreamTransport
#[derive(Debug)]
pub struct RawFdIo(RawFd);

impl RawFdIo {
    /// Wrap an arbitrary open descriptor.
    pub fn new(fd: RawFd) -> Self {
        Self(fd)
    }

    /// The process's standard input (fd 0).
    pub fn stdin() -> Self {
        Self(0)
    }

    /// The process's standard output (fd 1).
    pub fn stdout() -> Self {
        Self(1)
    }
}

impl std::os::fd::AsRawFd for RawFdIo {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

impl io::Read for RawFdIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = unsafe { read(self.0, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    // std's default would read into only the first buffer; go through readv so
    // the transport's vectored fill stays one syscall on raw descriptors too.
    fn read_vectored(&mut self, bufs: &mut [io::IoSliceMut<'_>]) -> io::Result<usize> {
        readv_fd(self.0, bufs)
    }
}

impl io::Write for RawFdIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = unsafe { write(self.0, buf.as_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    // std's default would write only the first non-empty buffer; writev sends
    // every queued segment in one syscall.
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        writev_fd(self.0, bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::AsRawFd;

    #[test]
    fn nonblocking_pipe_reads_would_block_when_empty() {
        let (reader, writer) = std::io::pipe().expect("os pipe");
        set_nonblocking(reader.as_raw_fd()).unwrap();
        let mut raw = RawFdIo::new(reader.as_raw_fd());
        let mut buf = [0u8; 4];
        let err = raw.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        let mut raw_writer = RawFdIo::new(writer.as_raw_fd());
        raw_writer.write_all(b"hiya").unwrap();
        assert_eq!(raw.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"hiya");
        // Idempotent: setting the flag again is a no-op.
        set_nonblocking(reader.as_raw_fd()).unwrap();
    }

    #[test]
    fn poll_reports_readability() {
        let (reader, mut writer) = std::io::pipe().expect("os pipe");
        let mut fds = [PollFd { fd: reader.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "empty pipe is not readable");
        writer.write_all(&[7]).unwrap();
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        drop(writer);
        let mut drain = [0u8; 8];
        let mut reader = reader;
        assert_eq!(reader.read(&mut drain).unwrap(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_roundtrip_add_wait_remove() {
        let ep = epoll_create().unwrap();
        let (reader, mut writer) = std::io::pipe().expect("os pipe");
        epoll_add(&ep, reader.as_raw_fd(), EPOLLIN, 0xFEED).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_wait_events(&ep, &mut events, 0).unwrap(), 0);

        writer.write_all(&[1]).unwrap();
        assert_eq!(epoll_wait_events(&ep, &mut events, 1000).unwrap(), 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_ne!(mask & EPOLLIN, 0);
        assert_eq!(token, 0xFEED);

        epoll_modify(&ep, reader.as_raw_fd(), EPOLLIN, 0xBEEF).unwrap();
        assert_eq!(epoll_wait_events(&ep, &mut events, 1000).unwrap(), 1);
        let token = events[0].data;
        assert_eq!(token, 0xBEEF);

        epoll_remove(&ep, reader.as_raw_fd()).unwrap();
        assert_eq!(epoll_wait_events(&ep, &mut events, 0).unwrap(), 0);
    }

    #[test]
    fn vectored_pipe_roundtrip_crosses_segment_boundaries() {
        let (reader, writer) = std::io::pipe().expect("os pipe");
        let mut w = RawFdIo::new(writer.as_raw_fd());
        let segs = [
            io::IoSlice::new(b"alpha"),
            io::IoSlice::new(b""),
            io::IoSlice::new(b"beta"),
            io::IoSlice::new(b"gamma!"),
        ];
        assert_eq!(w.write_vectored(&segs).unwrap(), 15);

        let mut r = RawFdIo::new(reader.as_raw_fd());
        let (mut a, mut b, mut c) = ([0u8; 7], [0u8; 0], [0u8; 12]);
        let mut out =
            [io::IoSliceMut::new(&mut a), io::IoSliceMut::new(&mut b), io::IoSliceMut::new(&mut c)];
        assert_eq!(r.read_vectored(&mut out).unwrap(), 15);
        assert_eq!(&a, b"alphabe");
        assert_eq!(&c[..8], b"tagamma!");
    }

    #[test]
    fn vectored_with_more_than_stack_segments_still_makes_progress() {
        let (reader, writer) = std::io::pipe().expect("os pipe");
        let mut w = RawFdIo::new(writer.as_raw_fd());
        let payload: Vec<[u8; 1]> = (0u8..12).map(|i| [i]).collect();
        let segs: Vec<io::IoSlice<'_>> = payload.iter().map(|s| io::IoSlice::new(s)).collect();
        // Only the first IOV_STACK segments go down in one call; callers loop.
        let n = w.write_vectored(&segs).unwrap();
        assert_eq!(n, IOV_STACK);
        let mut r = RawFdIo::new(reader.as_raw_fd());
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), IOV_STACK);
        assert_eq!(&buf[..IOV_STACK], &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_listeners_share_a_port() {
        use std::net::{SocketAddr, TcpStream};

        let first = reuseport_listener("127.0.0.1:0".parse::<SocketAddr>().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        // A second listener on the very same concrete port must succeed.
        let second = reuseport_listener(addr).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), addr.port());

        // The kernel hashes connections across both; a connect lands on one.
        let client = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match first.accept() {
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("accept on first listener: {e}"),
            }
            match second.accept() {
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("accept on second listener: {e}"),
            }
            assert!(std::time::Instant::now() < deadline, "no listener saw the connection");
            std::thread::yield_now();
        }
        drop(client);
    }
}
