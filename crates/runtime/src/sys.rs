//! Raw OS readiness primitives: `epoll` (Linux), `poll(2)` (any Unix), and the
//! few descriptor chores around them (`O_NONBLOCK`, raw-fd I/O for stdio).
//!
//! The workspace builds with no external crates, so the bindings are declared
//! here directly against the C library every Rust std program already links.
//! Like `crates/iblt/src/kernels.rs`, this is the one module in its crate where
//! `unsafe` is allowed: every call either passes buffers whose lengths are
//! taken from live Rust slices or manipulates descriptors this module owns,
//! and everything above it speaks safe Rust.

// The only unsafe code in this crate: FFI calls into the C library, each
// operating strictly on caller-provided slices or owned descriptors.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_short, c_ulong, c_void};

// ---------------------------------------------------------------------------
// C library declarations
// ---------------------------------------------------------------------------

/// `struct pollfd` from `<poll.h>`. Identical layout on every Unix.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch (negative entries are ignored by the kernel).
    pub fd: c_int,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: c_short,
    /// Returned events.
    pub revents: c_short,
}

/// Readable (or peer hung up with data still buffered).
pub const POLLIN: c_short = 0x001;
/// Writable without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: c_short = 0x010;

/// `struct epoll_event` from `<sys/epoll.h>`. The kernel ABI packs it on
/// x86_64 only; every other architecture uses natural alignment.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Ready/requested event mask ([`EPOLLIN`] / [`EPOLLOUT`] / ...).
    pub events: u32,
    /// Caller-chosen token handed back verbatim with each event.
    pub data: u64,
}

/// Readable.
#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
/// Writable.
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported).
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported).
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half — reading will drain then return EOF.
#[cfg(target_os = "linux")]
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;

    #[cfg(target_os = "linux")]
    fn epoll_create1(flags: c_int) -> c_int;
    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    #[cfg(target_os = "linux")]
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

fn cvt(res: c_int) -> io::Result<c_int> {
    if res < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(res)
    }
}

// ---------------------------------------------------------------------------
// Safe wrappers
// ---------------------------------------------------------------------------

/// A descriptor this module owns and closes on drop (the epoll instance).
#[derive(Debug)]
pub struct OwnedSysFd(RawFd);

impl OwnedSysFd {
    /// The raw descriptor number.
    pub fn raw(&self) -> RawFd {
        self.0
    }
}

impl Drop for OwnedSysFd {
    fn drop(&mut self) {
        // Nothing useful to do with a close error on an fd we own exclusively.
        unsafe { close(self.0) };
    }
}

/// A new epoll instance (close-on-exec).
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<OwnedSysFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(OwnedSysFd(fd))
}

#[cfg(target_os = "linux")]
fn epoll_ctl_op(ep: &OwnedSysFd, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data: token };
    cvt(unsafe { epoll_ctl(ep.raw(), op, fd, &mut event) })?;
    Ok(())
}

/// Add `fd` to the epoll set with the given event mask and token.
#[cfg(target_os = "linux")]
pub fn epoll_add(ep: &OwnedSysFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl_op(ep, EPOLL_CTL_ADD, fd, events, token)
}

/// Change `fd`'s event mask / token.
#[cfg(target_os = "linux")]
pub fn epoll_modify(ep: &OwnedSysFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    epoll_ctl_op(ep, EPOLL_CTL_MOD, fd, events, token)
}

/// Remove `fd` from the epoll set.
#[cfg(target_os = "linux")]
pub fn epoll_remove(ep: &OwnedSysFd, fd: RawFd) -> io::Result<()> {
    epoll_ctl_op(ep, EPOLL_CTL_DEL, fd, 0, 0)
}

/// Wait for events; `timeout_ms < 0` blocks indefinitely. Returns how many
/// entries of `events` were filled. Retries on `EINTR`.
#[cfg(target_os = "linux")]
pub fn epoll_wait_events(
    ep: &OwnedSysFd,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    loop {
        let n =
            unsafe { epoll_wait(ep.raw(), events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `poll(2)` over the given descriptors; `timeout_ms < 0` blocks indefinitely.
/// Returns how many entries have non-zero `revents`. Retries on `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Switch `fd` to non-blocking mode (`O_NONBLOCK`), preserving its other flags.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    if flags & O_NONBLOCK == 0 {
        cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    }
    Ok(())
}

/// Unbuffered `Read`/`Write`/`AsRawFd` over a borrowed raw descriptor.
///
/// Exists for wiring a process's own stdio pipes into a [`StreamTransport`]:
/// `std::io::Stdout` interposes a `LineWriter` whose internal buffer would hide
/// bytes from the transport's `has_pending_out` accounting (a readiness driver
/// would disarm write interest while bytes still sat in libstd's buffer), so
/// the reactor path talks to the descriptors directly. The descriptor is
/// *borrowed*: dropping this does not close it.
///
/// [`StreamTransport`]: recon_protocol::StreamTransport
#[derive(Debug)]
pub struct RawFdIo(RawFd);

impl RawFdIo {
    /// Wrap an arbitrary open descriptor.
    pub fn new(fd: RawFd) -> Self {
        Self(fd)
    }

    /// The process's standard input (fd 0).
    pub fn stdin() -> Self {
        Self(0)
    }

    /// The process's standard output (fd 1).
    pub fn stdout() -> Self {
        Self(1)
    }
}

impl std::os::fd::AsRawFd for RawFdIo {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

impl io::Read for RawFdIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = unsafe { read(self.0, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }
}

impl io::Write for RawFdIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = unsafe { write(self.0, buf.as_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::AsRawFd;

    #[test]
    fn nonblocking_pipe_reads_would_block_when_empty() {
        let (reader, writer) = std::io::pipe().expect("os pipe");
        set_nonblocking(reader.as_raw_fd()).unwrap();
        let mut raw = RawFdIo::new(reader.as_raw_fd());
        let mut buf = [0u8; 4];
        let err = raw.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        let mut raw_writer = RawFdIo::new(writer.as_raw_fd());
        raw_writer.write_all(b"hiya").unwrap();
        assert_eq!(raw.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"hiya");
        // Idempotent: setting the flag again is a no-op.
        set_nonblocking(reader.as_raw_fd()).unwrap();
    }

    #[test]
    fn poll_reports_readability() {
        let (reader, mut writer) = std::io::pipe().expect("os pipe");
        let mut fds = [PollFd { fd: reader.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "empty pipe is not readable");
        writer.write_all(&[7]).unwrap();
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        drop(writer);
        let mut drain = [0u8; 8];
        let mut reader = reader;
        assert_eq!(reader.read(&mut drain).unwrap(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_roundtrip_add_wait_remove() {
        let ep = epoll_create().unwrap();
        let (reader, mut writer) = std::io::pipe().expect("os pipe");
        epoll_add(&ep, reader.as_raw_fd(), EPOLLIN, 0xFEED).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_wait_events(&ep, &mut events, 0).unwrap(), 0);

        writer.write_all(&[1]).unwrap();
        assert_eq!(epoll_wait_events(&ep, &mut events, 1000).unwrap(), 1);
        let (mask, token) = (events[0].events, events[0].data);
        assert_ne!(mask & EPOLLIN, 0);
        assert_eq!(token, 0xFEED);

        epoll_modify(&ep, reader.as_raw_fd(), EPOLLIN, 0xBEEF).unwrap();
        assert_eq!(epoll_wait_events(&ep, &mut events, 1000).unwrap(), 1);
        let token = events[0].data;
        assert_eq!(token, 0xBEEF);

        epoll_remove(&ep, reader.as_raw_fd()).unwrap();
        assert_eq!(epoll_wait_events(&ep, &mut events, 0).unwrap(), 0);
    }
}
