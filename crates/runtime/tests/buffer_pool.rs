//! Pins the tentpole allocation claim: once a server worker's buffer pool is
//! warm, serving more sessions checks buffers out of the pool instead of
//! allocating fresh ones — `buffer_pool_stats().misses` must not move.
//!
//! This is deliberately the *only* test in this file: the pool counters are
//! process-wide, and integration-test files run as their own process, so no
//! parallel test can perturb the deltas measured here.

#![cfg(unix)]

use recon_base::ReconError;
use recon_protocol::amplify::{AmplifiedReceiver, AmplifiedSender, Exhaust};
use recon_protocol::{buffer_pool_stats, Envelope, Role};
use recon_runtime::{
    connect_endpoint, drive_endpoint, ReactorConfig, Server, ServerConfig, TcpEndpoint, TcpService,
};
use std::net::SocketAddr;
use std::time::Duration;

struct OneSender;

impl TcpService for OneSender {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut TcpEndpoint,
    ) -> Result<(), ReconError> {
        let alice =
            AmplifiedSender::new(4, |attempt| Ok(Envelope::round(1, "digest", &(500 + attempt))))
                .expect("sender");
        endpoint.register(0, Role::Alice, alice)
    }
}

fn run_client(addr: SocketAddr) {
    let mut endpoint = connect_endpoint(addr).expect("connect");
    let bob = AmplifiedReceiver::new(
        4,
        |_, env: Envelope| env.decode_payload::<u64>(),
        |_| true,
        |_| Envelope::control(2, "retry", &()),
        Exhaust::LastError,
    );
    endpoint.register(0, Role::Bob, bob).expect("register");
    let mut recovered = None;
    drive_endpoint(&mut endpoint, &ReactorConfig::default(), |endpoint| {
        match endpoint.take_outcome::<u64>(0) {
            Some(outcome) => {
                recovered = Some(outcome?.recovered);
                Ok(true)
            }
            None => Ok(false),
        }
    })
    .expect("client drive");
    assert_eq!(recovered, Some(500));
}

#[test]
fn steady_state_serving_allocates_no_new_connection_buffers() {
    let config = ServerConfig::new().workers(1).session_deadline(Some(Duration::from_secs(15)));
    let server = Server::bind("127.0.0.1:0", config, |_| OneSender).expect("bind");
    let addr = server.local_addr();

    // Warm-up: sequential sessions populate the worker's pool up to the peak
    // concurrency this loop ever reaches (connection retire can lag the
    // client's close slightly, so the peak may exceed 1, but it is small and
    // reached here, not later).
    for _ in 0..6 {
        run_client(addr);
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(200));
    let warm = buffer_pool_stats();
    assert!(warm.misses >= 1, "warm-up must have allocated at least once: {warm:?}");

    // Steady state: every further session must be served from recycled
    // buffers. A single new allocation here is the regression this test pins.
    for _ in 0..12 {
        run_client(addr);
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(200));
    let steady = buffer_pool_stats();
    assert_eq!(
        steady.misses, warm.misses,
        "steady-state serving allocated fresh connection buffers: {warm:?} -> {steady:?}"
    );
    assert!(
        steady.hits >= warm.hits + 12,
        "12 steady-state sessions must all be pool hits: {warm:?} -> {steady:?}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.served(), 18, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    let end = buffer_pool_stats();
    assert_eq!(end.outstanding(), 0, "all buffers returned after shutdown: {end:?}");
}
