//! # recon-examples
//!
//! A thin crate that hosts the repository-level runnable examples (`examples/` at
//! the workspace root) and the cross-crate integration tests (`tests/` at the
//! workspace root). It re-exports the public crates so examples and tests can
//! `use recon_examples::prelude::*` if they prefer a single import.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Convenience re-exports of the whole workspace API surface.
pub mod prelude {
    pub use recon_apps::database::{BinaryTable, SosProtocolKind};
    pub use recon_apps::documents::{reconcile_collections, Collection};
    pub use recon_base::{CommStats, ReconError};
    pub use recon_estimator::{L0Config, L0Estimator, Side, StrataConfig, StrataEstimator};
    pub use recon_field::{Fp, Poly};
    pub use recon_graph::{degree_neighborhood, degree_order, forest, general, Forest, Graph};
    pub use recon_iblt::{Iblt, IbltConfig};
    pub use recon_protocol::{
        Amplification, Envelope, Outcome, Party, Session, SessionBuilder, Step,
    };
    pub use recon_runtime::{
        connect_endpoint, drive_endpoint, Poller, Reactor, ReactorConfig, Server, ServerConfig,
        TcpService,
    };
    pub use recon_set::{CharPolyProtocol, IbltSetProtocol, Multiset, MultisetProtocol, SetDiff};
    pub use recon_sos::{
        cascading, iblt_of_iblts, multiround, naive, workload, SetOfSets, SosParams,
    };
}
