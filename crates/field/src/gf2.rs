//! Sparse GF(2) linear algebra for the IBLT decode-rescue path.
//!
//! A stalled IBLT peel leaves a residual system over GF(2): every remaining
//! cell is the XOR of the (key ‖ checksum) vectors of the keys hashed to it,
//! and every candidate key that might explain a cell is itself such a vector.
//! Finishing the decode means answering two questions:
//!
//! * **subset-XOR**: which subset of candidate vectors XORs to this cell's
//!   contents? ([`SubsetXorSolver::solve`] — Gaussian elimination with a
//!   tracked combination mask per basis row, so the answer comes back as the
//!   set of generator indices, not just "yes"), and
//! * **basis isolation**: which single-key vectors are *forced* by the
//!   residual cells alone? (the reduced rows of the same elimination,
//!   [`SubsetXorSolver::basis_rows`] — a row that survives reduction and
//!   passes the checksum test is a key the peel could not isolate).
//!
//! The solver is a peeling/Gaussian hybrid in the same sense as the IBLT
//! decoder itself: a generator whose reduced value claims a previously
//! unclaimed bit position is "peeled" into the basis in O(row) without any
//! row combination, and only genuinely dependent rows pay for elimination.
//! Rows are dense bitsets ([`BitVec`], 64 bits per word) because the residual
//! systems are small (bounded by the decode budget) while row *width* is the
//! key width — word-parallel XOR is the right shape for that.

/// A fixed-width bit vector backed by `u64` words (little-endian bit order:
/// bit `i` lives in word `i / 64` at position `i % 64`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    bits: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// The all-zero vector of `bits` bits.
    pub fn zeros(bits: usize) -> Self {
        Self { bits, words: vec![0; bits.div_ceil(64)] }
    }

    /// A vector of `8 * bytes.len()` bits holding `bytes` (byte `i` occupies
    /// bits `8i..8i+8`, least-significant bit first).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut v = Self::zeros(bytes.len() * 8);
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            v.words[i] = u64::from_le_bytes(word);
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// `true` if the vector has zero width.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i` to `value`.
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.bits);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// XOR `other` into `self` (widths must match).
    pub fn xor_assign(&mut self, other: &BitVec) {
        debug_assert_eq!(self.bits, other.bits, "BitVec width mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    /// Index of the lowest set bit, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(i * 64 + bit)
            })
        })
    }

    /// The first `n` bytes of the vector (bits `0..8n`), for reading a solved
    /// row back out as key bytes.
    pub fn to_bytes(&self, n: usize) -> Vec<u8> {
        debug_assert!(n * 8 <= self.words.len() * 64);
        let mut out = vec![0u8; n];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = (self.words[i / 8] >> (8 * (i % 8))) as u8;
        }
        out
    }
}

/// One reduced basis row: the pivot bit it owns, its fully reduced value, and
/// the mask of original generators whose XOR produces that value.
#[derive(Debug, Clone)]
struct Pivot {
    bit: usize,
    value: BitVec,
    mask: BitVec,
}

/// The outcome of a subset-XOR solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubsetSolution {
    /// The target is outside the span of the generators: no subset works.
    Inconsistent,
    /// Exactly one subset of generators XORs to the target (indices ascending).
    Unique(Vec<usize>),
    /// The system is consistent but under-determined: `particular` is one
    /// solution, and any XOR with kernel masks ([`SubsetXorSolver::kernel`])
    /// yields another. There are `2^kernel_dim` solutions in total.
    Ambiguous {
        /// One valid subset (indices ascending).
        particular: Vec<usize>,
        /// Dimension of the solution space's kernel.
        kernel_dim: usize,
    },
}

/// Incremental GF(2) Gaussian elimination over generator vectors, tracking for
/// every basis row which generators combine into it.
///
/// Generators are added one at a time ([`SubsetXorSolver::add_generator`]) and
/// reduced against the maintained row-reduced basis; the basis is kept fully
/// reduced (each pivot bit appears in exactly one row), so solving for a
/// target is a single reduction pass. Dependent generators contribute kernel
/// masks instead of rows, which is what makes solution uniqueness decidable.
#[derive(Debug, Clone)]
pub struct SubsetXorSolver {
    dim: usize,
    max_generators: usize,
    generators: usize,
    pivots: Vec<Pivot>,
    kernel: Vec<BitVec>,
}

impl SubsetXorSolver {
    /// An empty system over vectors of `dim` bits, accepting up to
    /// `max_generators` generators (the mask width).
    pub fn new(dim: usize, max_generators: usize) -> Self {
        Self { dim, max_generators, generators: 0, pivots: Vec::new(), kernel: Vec::new() }
    }

    /// Number of generators added so far.
    pub fn generators(&self) -> usize {
        self.generators
    }

    /// Rank of the generator set.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Dimension of the kernel (number of independent dependent combinations).
    pub fn kernel_dim(&self) -> usize {
        self.kernel.len()
    }

    /// The kernel basis: each mask is a nonempty set of generator indices
    /// whose XOR is zero.
    pub fn kernel(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        self.kernel.iter().map(|m| m.ones().collect())
    }

    /// The fully reduced basis row values (each owning a distinct pivot bit).
    /// For the IBLT rescue these are the candidate single-key vectors the
    /// residual system forces.
    pub fn basis_rows(&self) -> impl Iterator<Item = &BitVec> + '_ {
        self.pivots.iter().map(|p| &p.value)
    }

    /// Reduce `value`/`mask` in place against the current basis.
    fn reduce(&self, value: &mut BitVec, mask: &mut BitVec) {
        for pivot in &self.pivots {
            if value.get(pivot.bit) {
                value.xor_assign(&pivot.value);
                mask.xor_assign(&pivot.mask);
            }
        }
    }

    /// Add the next generator (index `self.generators()`), returning its
    /// index. Panics if `value` has the wrong width or the generator budget is
    /// exhausted.
    pub fn add_generator(&mut self, value: &BitVec) -> usize {
        assert_eq!(value.len(), self.dim, "generator width mismatch");
        assert!(self.generators < self.max_generators, "generator budget exhausted");
        let index = self.generators;
        self.generators += 1;

        let mut value = value.clone();
        let mut mask = BitVec::zeros(self.max_generators);
        mask.set(index, true);
        self.reduce(&mut value, &mut mask);

        match value.first_set() {
            None => self.kernel.push(mask),
            Some(bit) => {
                // Keep the basis fully reduced: clear the new pivot bit from
                // every existing row, so reduction stays a single pass.
                for pivot in &mut self.pivots {
                    if pivot.value.get(bit) {
                        pivot.value.xor_assign(&value);
                        pivot.mask.xor_assign(&mask);
                    }
                }
                self.pivots.push(Pivot { bit, value, mask });
            }
        }
        index
    }

    /// Solve for the subset of generators whose XOR equals `target`.
    pub fn solve(&self, target: &BitVec) -> SubsetSolution {
        assert_eq!(target.len(), self.dim, "target width mismatch");
        let mut value = target.clone();
        let mut mask = BitVec::zeros(self.max_generators);
        self.reduce(&mut value, &mut mask);
        if !value.is_zero() {
            return SubsetSolution::Inconsistent;
        }
        let particular: Vec<usize> = mask.ones().collect();
        if self.kernel.is_empty() {
            SubsetSolution::Unique(particular)
        } else {
            SubsetSolution::Ambiguous { particular, kernel_dim: self.kernel.len() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn random_vec(rng: &mut Xoshiro256, bits: usize) -> BitVec {
        let mut v = BitVec::zeros(bits);
        for w in &mut v.words {
            *w = rng.next_u64();
        }
        if !bits.is_multiple_of(64) {
            let last = v.words.len() - 1;
            v.words[last] &= (1u64 << (bits % 64)) - 1;
        }
        v
    }

    #[test]
    fn bitvec_roundtrips_bytes_and_bits() {
        let bytes = [0xA5u8, 0x01, 0xFF, 0x00, 0x80];
        let v = BitVec::from_bytes(&bytes);
        assert_eq!(v.len(), 40);
        assert!(v.get(0) && !v.get(1) && v.get(2)); // 0xA5 = 0b1010_0101
        assert_eq!(v.to_bytes(5), bytes);
        assert_eq!(v.count_ones(), 4 + 1 + 8 + 1); // per-byte popcounts, 0x00 contributes none
        assert_eq!(v.first_set(), Some(0));
        let ones: Vec<usize> = v.ones().collect();
        assert_eq!(ones.len(), v.count_ones());
        assert!(ones.windows(2).all(|w| w[0] < w[1]));
        for i in ones {
            assert!(v.get(i));
        }
    }

    #[test]
    fn bitvec_set_and_xor() {
        let mut a = BitVec::zeros(100);
        a.set(0, true);
        a.set(99, true);
        let mut b = BitVec::zeros(100);
        b.set(99, true);
        b.set(64, true);
        a.xor_assign(&b);
        assert!(a.get(0) && a.get(64) && !a.get(99));
        assert_eq!(a.count_ones(), 2);
        a.set(0, false);
        a.set(64, false);
        assert!(a.is_zero());
        assert_eq!(a.first_set(), None);
    }

    #[test]
    fn unique_solution_recovers_the_subset() {
        // Independent generators: solution of any target in the span is unique
        // and must be exactly the subset that built it.
        let mut rng = Xoshiro256::new(7);
        for trial in 0..50u64 {
            let bits = 96 + (trial as usize % 3) * 13;
            let n = 2 + (trial as usize % 15);
            let gens: Vec<BitVec> = (0..n).map(|_| random_vec(&mut rng, bits)).collect();
            let mut solver = SubsetXorSolver::new(bits, n);
            for g in &gens {
                solver.add_generator(g);
            }
            if solver.kernel_dim() != 0 {
                continue; // astronomically unlikely at these widths
            }
            let subset: Vec<usize> = (0..n).filter(|_| rng.next_u64() & 1 == 1).collect();
            let mut target = BitVec::zeros(bits);
            for &i in &subset {
                target.xor_assign(&gens[i]);
            }
            assert_eq!(solver.solve(&target), SubsetSolution::Unique(subset));
        }
    }

    #[test]
    fn out_of_span_target_is_inconsistent() {
        // Give every generator a zero high bit; a target with it set cannot be
        // reached.
        let mut rng = Xoshiro256::new(11);
        let bits = 80;
        let mut solver = SubsetXorSolver::new(bits, 8);
        for _ in 0..8 {
            let mut g = random_vec(&mut rng, bits);
            g.set(bits - 1, false);
            solver.add_generator(&g);
        }
        let mut target = BitVec::zeros(bits);
        target.set(bits - 1, true);
        assert_eq!(solver.solve(&target), SubsetSolution::Inconsistent);
    }

    #[test]
    fn dependent_generators_are_detected_and_enumerable() {
        let mut rng = Xoshiro256::new(13);
        let bits = 64;
        let a = random_vec(&mut rng, bits);
        let b = random_vec(&mut rng, bits);
        let mut c = a.clone();
        c.xor_assign(&b); // c = a ^ b
        let mut solver = SubsetXorSolver::new(bits, 3);
        solver.add_generator(&a);
        solver.add_generator(&b);
        solver.add_generator(&c);
        assert_eq!(solver.rank(), 2);
        assert_eq!(solver.kernel_dim(), 1);
        let kernel: Vec<Vec<usize>> = solver.kernel().collect();
        assert_eq!(kernel, vec![vec![0, 1, 2]]);

        match solver.solve(&a) {
            SubsetSolution::Ambiguous { particular, kernel_dim: 1 } => {
                // particular ^ kernel = the other representation of `a`.
                let mut value = BitVec::zeros(bits);
                for &i in &particular {
                    value.xor_assign([&a, &b, &c][i]);
                }
                assert_eq!(value, a);
            }
            other => panic!("expected ambiguous, got {other:?}"),
        }
    }

    #[test]
    fn basis_rows_isolate_forced_vectors() {
        // Three "cells" containing {x}, {x, y}, {y, z}: reduction must be able
        // to express x, y and z as basis rows (the candidate-free rescue).
        let mut rng = Xoshiro256::new(17);
        let bits = 128;
        let x = random_vec(&mut rng, bits);
        let y = random_vec(&mut rng, bits);
        let z = random_vec(&mut rng, bits);
        let mut xy = x.clone();
        xy.xor_assign(&y);
        let mut yz = y.clone();
        yz.xor_assign(&z);

        let mut solver = SubsetXorSolver::new(bits, 3);
        solver.add_generator(&x);
        solver.add_generator(&xy);
        solver.add_generator(&yz);
        assert_eq!(solver.rank(), 3);
        // The fully reduced rows span the same space; x, y and z must each be
        // uniquely expressible.
        for (v, want) in [(&x, vec![0]), (&y, vec![0, 1]), (&z, vec![0, 1, 2])] {
            assert_eq!(solver.solve(v), SubsetSolution::Unique(want));
        }
    }

    #[test]
    fn proptest_solutions_always_verify() {
        // Random systems with repetitions: whatever the solver answers must
        // actually XOR to the target, and Unique answers must be the only
        // consistent subset when re-checked by brute force (small n).
        let mut rng = Xoshiro256::new(23);
        for trial in 0..200u64 {
            let bits = 16 + (trial as usize % 5) * 7;
            let n = 1 + (trial as usize % 8);
            let gens: Vec<BitVec> = (0..n).map(|_| random_vec(&mut rng, bits)).collect();
            let mut solver = SubsetXorSolver::new(bits, n);
            for g in &gens {
                solver.add_generator(g);
            }
            let target = random_vec(&mut rng, bits);
            let brute: Vec<u32> = (0u32..1 << n)
                .filter(|&mask| {
                    let mut v = BitVec::zeros(bits);
                    for (i, g) in gens.iter().enumerate() {
                        if mask >> i & 1 == 1 {
                            v.xor_assign(g);
                        }
                    }
                    v == target
                })
                .collect();
            match solver.solve(&target) {
                SubsetSolution::Inconsistent => assert!(brute.is_empty(), "trial {trial}"),
                SubsetSolution::Unique(subset) => {
                    let mask: u32 = subset.iter().map(|&i| 1 << i).sum();
                    assert_eq!(brute, vec![mask], "trial {trial}");
                }
                SubsetSolution::Ambiguous { particular, kernel_dim } => {
                    let mask: u32 = particular.iter().map(|&i| 1 << i).sum();
                    assert!(brute.contains(&mask), "trial {trial}");
                    assert_eq!(brute.len(), 1 << kernel_dim, "trial {trial}");
                }
            }
        }
    }
}
