//! The prime field GF(2^61 − 1).
//!
//! `2^61 − 1` is a Mersenne prime, so modular reduction needs no division, and every
//! element of the paper's universe (`w`-bit words with `w ≤ 61`) embeds directly.
//! Elements are stored in canonical form (`0 ≤ value < p`).

use recon_base::hash::mod_mersenne61;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `p = 2^61 − 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of GF(2^61 − 1), always stored in canonical reduced form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Construct an element from a `u64`, reducing modulo `p`.
    #[inline]
    pub fn new(value: u64) -> Self {
        let mut v = (value & MODULUS) + (value >> 61);
        if v >= MODULUS {
            v -= MODULUS;
        }
        Fp(v)
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// `true` if this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Raise to the power `exp` by square-and-multiply.
    pub fn pow(self, mut exp: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (panics on zero, which has no inverse).
    pub fn inv(self) -> Fp {
        assert!(!self.is_zero(), "attempted to invert zero in GF(2^61-1)");
        // Fermat's little theorem: a^(p-2) = a^{-1}.
        self.pow(MODULUS - 2)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::new(v)
    }
}

impl From<u32> for Fp {
    fn from(v: u32) -> Self {
        Fp(v as u64)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let mut v = self.0 + rhs.0;
        if v >= MODULUS {
            v -= MODULUS;
        }
        Fp(v)
    }
}

impl AddAssign for Fp {
    #[inline]
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let v = if self.0 >= rhs.0 { self.0 - rhs.0 } else { self.0 + MODULUS - rhs.0 };
        Fp(v)
    }
}

impl SubAssign for Fp {
    #[inline]
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(mod_mersenne61((self.0 as u128) * (rhs.0 as u128)))
    }
}

impl MulAssign for Fp {
    #[inline]
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

impl Div for Fp {
    type Output = Fp;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // field division IS multiplication by the inverse
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inv()
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, Add::add)
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, Mul::mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Fp::new(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(MODULUS + 5), Fp::new(5));
        assert!(Fp::new(u64::MAX).value() < MODULUS);
    }

    #[test]
    fn small_arithmetic() {
        let a = Fp::new(7);
        let b = Fp::new(5);
        assert_eq!((a + b).value(), 12);
        assert_eq!((a - b).value(), 2);
        assert_eq!((b - a), -Fp::new(2));
        assert_eq!((a * b).value(), 35);
        assert_eq!((a / a), Fp::ONE);
    }

    #[test]
    fn negation_of_zero_is_zero() {
        assert_eq!(-Fp::ZERO, Fp::ZERO);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Fp::new(123_456_789);
        let mut acc = Fp::ONE;
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc *= a;
        }
    }

    #[test]
    fn fermat_little_theorem() {
        for v in [1u64, 2, 3, 12345, MODULUS - 1] {
            assert_eq!(Fp::new(v).pow(MODULUS - 1), Fp::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn zero_has_no_inverse() {
        let _ = Fp::ZERO.inv();
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Fp::new(1), Fp::new(2), Fp::new(3)];
        assert_eq!(xs.iter().copied().sum::<Fp>(), Fp::new(6));
        assert_eq!(xs.iter().copied().product::<Fp>(), Fp::new(6));
    }

    fn arb_fp() -> impl Strategy<Value = Fp> {
        any::<u64>().prop_map(Fp::new)
    }

    proptest! {
        #[test]
        fn addition_commutes(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn multiplication_commutes(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn addition_associates(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn multiplication_associates(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributivity(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn additive_inverse(a in arb_fp()) {
            prop_assert_eq!(a + (-a), Fp::ZERO);
        }

        #[test]
        fn multiplicative_inverse(a in arb_fp()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a * a.inv(), Fp::ONE);
            prop_assert_eq!(a / a, Fp::ONE);
        }

        #[test]
        fn subtraction_is_inverse_of_addition(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn values_are_canonical(a in arb_fp(), b in arb_fp()) {
            prop_assert!((a + b).value() < MODULUS);
            prop_assert!((a * b).value() < MODULUS);
            prop_assert!((a - b).value() < MODULUS);
        }
    }
}
