//! Dense univariate polynomials over GF(2^61 − 1).
//!
//! The characteristic-polynomial reconciliation protocol only manipulates polynomials
//! of degree at most `d` (the set-difference bound), so a dense representation with
//! schoolbook multiplication is the right trade-off: it keeps the code simple and is
//! comfortably fast for the `d ≤` a few thousand exercised by the paper's protocols.

use crate::fp::Fp;
use std::fmt;

/// A dense polynomial with coefficients in GF(2^61 − 1), stored little-endian
/// (`coeffs[i]` multiplies `z^i`) and kept normalized (no trailing zero
/// coefficients; the zero polynomial has an empty coefficient vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Fp>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly { coeffs: vec![Fp::ONE] }
    }

    /// A constant polynomial.
    pub fn constant(c: Fp) -> Self {
        let mut p = Poly { coeffs: vec![c] };
        p.normalize();
        p
    }

    /// The monomial `z`.
    pub fn x() -> Self {
        Poly { coeffs: vec![Fp::ZERO, Fp::ONE] }
    }

    /// Build a polynomial from little-endian coefficients (normalizing trailing
    /// zeros).
    pub fn from_coeffs(coeffs: Vec<Fp>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// The monic polynomial `∏ (z − r)` with the given roots — exactly the
    /// characteristic polynomial `χ_S` of the paper when `roots` are the set
    /// elements. Built by divide and conquer so constructing a characteristic
    /// polynomial of a large set costs `O(n log^2 n)` field multiplications.
    pub fn from_roots(roots: &[Fp]) -> Self {
        fn build(roots: &[Fp]) -> Poly {
            match roots {
                [] => Poly::one(),
                [r] => Poly::from_coeffs(vec![-*r, Fp::ONE]),
                _ => {
                    let mid = roots.len() / 2;
                    build(&roots[..mid]).mul(&build(&roots[mid..]))
                }
            }
        }
        build(roots)
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Little-endian coefficients (normalized; empty for the zero polynomial).
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// Leading coefficient (`None` for the zero polynomial).
    pub fn leading(&self) -> Option<Fp> {
        self.coeffs.last().copied()
    }

    /// Evaluate at a point using Horner's rule.
    pub fn eval(&self, z: Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * z + c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or(Fp::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(Fp::ZERO);
            coeffs.push(a + b);
        }
        Poly::from_coeffs(coeffs)
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or(Fp::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(Fp::ZERO);
            coeffs.push(a - b);
        }
        Poly::from_coeffs(coeffs)
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Fp::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: Fp) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient·divisor + remainder` and `deg(remainder) < deg(divisor)`.
    /// Panics if the divisor is zero.
    pub fn divmod(&self, divisor: &Poly) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        if self.coeffs.len() < divisor.coeffs.len() {
            return (Poly::zero(), self.clone());
        }
        let lead_inv = divisor.leading().expect("non-zero divisor").inv();
        let mut rem = self.coeffs.clone();
        let deg_div = divisor.coeffs.len() - 1;
        let quot_len = rem.len() - deg_div;
        let mut quot = vec![Fp::ZERO; quot_len];
        for i in (0..quot_len).rev() {
            let coeff = rem[i + deg_div] * lead_inv;
            quot[i] = coeff;
            if coeff.is_zero() {
                continue;
            }
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i + j] -= coeff * dc;
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Remainder of Euclidean division.
    pub fn rem(&self, divisor: &Poly) -> Poly {
        self.divmod(divisor).1
    }

    /// Make the polynomial monic (leading coefficient 1). The zero polynomial is
    /// returned unchanged.
    pub fn monic(&self) -> Poly {
        match self.leading() {
            None => Poly::zero(),
            Some(l) if l == Fp::ONE => self.clone(),
            Some(l) => self.scale(l.inv()),
        }
    }

    /// Monic greatest common divisor via the Euclidean algorithm.
    pub fn gcd(&self, other: &Poly) -> Poly {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a.monic()
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        let coeffs =
            self.coeffs.iter().enumerate().skip(1).map(|(i, &c)| c * Fp::new(i as u64)).collect();
        Poly::from_coeffs(coeffs)
    }

    /// Compute `self^exp mod modulus` by repeated squaring (the core step of
    /// Cantor–Zassenhaus root finding, where `exp = (p − 1)/2`).
    pub fn pow_mod(&self, mut exp: u64, modulus: &Poly) -> Poly {
        assert!(
            modulus.degree().is_some_and(|d| d >= 1),
            "pow_mod requires a modulus of degree >= 1"
        );
        let mut base = self.rem(modulus);
        let mut acc = Poly::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base).rem(modulus);
            }
            base = base.mul(&base).rem(modulus);
            exp >>= 1;
        }
        acc
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .rev()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| match i {
                0 => format!("{c}"),
                1 => format!("{c}·z"),
                _ => format!("{c}·z^{i}"),
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn poly_from_u64(coeffs: &[u64]) -> Poly {
        Poly::from_coeffs(coeffs.iter().map(|&c| Fp::new(c)).collect())
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let p = poly_from_u64(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(Poly::from_coeffs(vec![Fp::ZERO; 4]), Poly::zero());
        assert!(Poly::zero().degree().is_none());
    }

    #[test]
    fn from_roots_has_correct_degree_and_evaluates_to_zero_at_roots() {
        let roots: Vec<Fp> = [3u64, 17, 100, 1 << 40].iter().map(|&r| Fp::new(r)).collect();
        let p = Poly::from_roots(&roots);
        assert_eq!(p.degree(), Some(4));
        assert_eq!(p.leading(), Some(Fp::ONE));
        for &r in &roots {
            assert_eq!(p.eval(r), Fp::ZERO);
        }
        assert_ne!(p.eval(Fp::new(5)), Fp::ZERO);
    }

    #[test]
    fn from_roots_of_empty_set_is_one() {
        assert_eq!(Poly::from_roots(&[]), Poly::one());
    }

    #[test]
    fn eval_matches_naive() {
        let p = poly_from_u64(&[5, 0, 3, 2]); // 5 + 3z^2 + 2z^3
        let z = Fp::new(7);
        let expected = Fp::new(5) + Fp::new(3) * z.pow(2) + Fp::new(2) * z.pow(3);
        assert_eq!(p.eval(z), expected);
    }

    #[test]
    fn mul_matches_known_product() {
        // (z + 1)(z + 2) = z^2 + 3z + 2
        let a = poly_from_u64(&[1, 1]);
        let b = poly_from_u64(&[2, 1]);
        assert_eq!(a.mul(&b), poly_from_u64(&[2, 3, 1]));
    }

    #[test]
    fn divmod_small_example() {
        // (z^2 + 3z + 2) / (z + 1) = (z + 2), remainder 0
        let num = poly_from_u64(&[2, 3, 1]);
        let den = poly_from_u64(&[1, 1]);
        let (q, r) = num.divmod(&den);
        assert_eq!(q, poly_from_u64(&[2, 1]));
        assert!(r.is_zero());
    }

    #[test]
    fn divmod_with_remainder() {
        // z^3 + 1 divided by z^2: quotient z, remainder 1
        let num = poly_from_u64(&[1, 0, 0, 1]);
        let den = poly_from_u64(&[0, 0, 1]);
        let (q, r) = num.divmod(&den);
        assert_eq!(q, poly_from_u64(&[0, 1]));
        assert_eq!(r, poly_from_u64(&[1]));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Poly::one().divmod(&Poly::zero());
    }

    #[test]
    fn gcd_of_polynomials_with_common_root() {
        let common = Fp::new(42);
        let a = Poly::from_roots(&[common, Fp::new(7)]);
        let b = Poly::from_roots(&[common, Fp::new(9), Fp::new(100)]);
        let g = a.gcd(&b);
        assert_eq!(g, Poly::from_roots(&[common]));
    }

    #[test]
    fn gcd_of_coprime_polynomials_is_one() {
        let a = Poly::from_roots(&[Fp::new(1), Fp::new(2)]);
        let b = Poly::from_roots(&[Fp::new(3), Fp::new(4)]);
        assert_eq!(a.gcd(&b), Poly::one());
    }

    #[test]
    fn derivative_of_cubic() {
        // d/dz (2z^3 + 3z^2 + 5) = 6z^2 + 6z
        let p = poly_from_u64(&[5, 0, 3, 2]);
        assert_eq!(p.derivative(), poly_from_u64(&[0, 6, 6]));
        assert_eq!(Poly::constant(Fp::new(9)).derivative(), Poly::zero());
    }

    #[test]
    fn pow_mod_agrees_with_naive_power() {
        let base = poly_from_u64(&[3, 1]); // z + 3
        let modulus = poly_from_u64(&[1, 0, 0, 1]); // z^3 + 1
        let naive = base.mul(&base).mul(&base).mul(&base).mul(&base).rem(&modulus);
        assert_eq!(base.pow_mod(5, &modulus), naive);
        assert_eq!(base.pow_mod(0, &modulus), Poly::one());
    }

    #[test]
    fn display_is_readable() {
        let p = poly_from_u64(&[2, 0, 1]);
        assert_eq!(format!("{p}"), "1·z^2 + 2");
        assert_eq!(format!("{}", Poly::zero()), "0");
    }

    fn arb_poly(max_deg: usize) -> impl Strategy<Value = Poly> {
        proptest::collection::vec(any::<u64>(), 0..=max_deg + 1)
            .prop_map(|v| Poly::from_coeffs(v.into_iter().map(Fp::new).collect()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn divmod_reconstructs_numerator(a in arb_poly(12), b in arb_poly(6)) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.divmod(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a.clone());
            if !r.is_zero() {
                prop_assert!(r.degree().unwrap() < b.degree().unwrap());
            }
        }

        #[test]
        fn multiplication_distributes_over_addition(
            a in arb_poly(8), b in arb_poly(8), c in arb_poly(8)
        ) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn evaluation_is_ring_homomorphism(a in arb_poly(8), b in arb_poly(8), z in any::<u64>()) {
            let z = Fp::new(z);
            prop_assert_eq!(a.add(&b).eval(z), a.eval(z) + b.eval(z));
            prop_assert_eq!(a.mul(&b).eval(z), a.eval(z) * b.eval(z));
        }

        #[test]
        fn gcd_divides_both(a in arb_poly(8), b in arb_poly(8)) {
            prop_assume!(!a.is_zero() && !b.is_zero());
            let g = a.gcd(&b);
            prop_assert!(a.rem(&g).is_zero());
            prop_assert!(b.rem(&g).is_zero());
        }
    }
}
