//! Structured solver for the charpoly rational-interpolation system.
//!
//! The linear system interpolating `χ_{S_A}/χ_{S_B}` from its evaluations is not
//! a generic `d × d` matrix: row `i` is `[1, z_i, …, z_i^{p−1}, −f_i, −f_i z_i,
//! …, −f_i z_i^{q−1}]` — two Vandermonde blocks, one scaled by the ratio values
//! (a Cauchy–Vandermonde displacement structure, Toeplitz/Hankel after a basis
//! change). Such systems need not be solved by `O(d^3)` elimination: finding a
//! monic pair `P, Q` with `P(z_i) = f_i·Q(z_i)` is *rational function
//! reconstruction*, solved in `O(d^2)` by interpolating the values into a single
//! polynomial `N` and running the extended Euclidean algorithm on
//! `(M = ∏(z − z_i), N)` until the remainder degree drops to the numerator
//! bound.
//!
//! Correctness (used by `recon-set`'s charpoly protocol): with `p + q + 1`
//! evaluation points, any two congruence solutions `(r, t)`, `(r′, t′)` with
//! `deg r ≤ p`, `deg t ≤ q` satisfy `deg(r t′ − r′ t) ≤ p + q < deg M`, so the
//! cross-product is the zero polynomial and the reduced fraction is unique. The
//! EEA row returned here satisfies those degree bounds by the standard invariant
//! `deg t_{j} = deg M − deg r_{j−1}`, hence it reduces to exactly the fraction
//! the dense elimination finds.

use crate::fp::Fp;
use crate::poly::Poly;

/// Invert every element of `values` in place using Montgomery's batch-inversion
/// trick (one field inversion plus `3n` multiplications). Returns `false` and
/// leaves `values` untouched if any element is zero.
pub fn batch_invert(values: &mut [Fp]) -> bool {
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = Fp::ONE;
    for &v in values.iter() {
        if v.is_zero() {
            return false;
        }
        prefix.push(acc);
        acc *= v;
    }
    let mut suffix_inv = acc.inv();
    for i in (0..values.len()).rev() {
        let original = values[i];
        values[i] = suffix_inv * prefix[i];
        suffix_inv *= original;
    }
    true
}

/// Newton interpolation: the unique polynomial of degree `< points.len()` with
/// `P(points[i]) = values[i]`. Returns `None` if two points coincide.
///
/// `O(n^2)` field multiplications; the divided-difference denominators are
/// inverted in one batch, so only a single field inversion is performed.
pub fn interpolate(points: &[Fp], values: &[Fp]) -> Option<Poly> {
    assert_eq!(points.len(), values.len(), "one value per interpolation point");
    let n = points.len();
    if n == 0 {
        return Some(Poly::zero());
    }

    // All divided-difference denominators, level by level: level j uses
    // points[i] − points[i − j] for i in j..n.
    let mut denominators = Vec::with_capacity(n * (n - 1) / 2);
    for j in 1..n {
        for i in j..n {
            denominators.push(points[i] - points[i - j]);
        }
    }
    if !batch_invert(&mut denominators) {
        return None; // repeated interpolation point
    }

    // Divided differences in place: after level j, coef[i] holds f[x_{i−j}..x_i].
    // Walk each level downward so coef[i − 1] is still the previous level's
    // value; level j's inverted denominators start at `offset` in the flat
    // buffer, in the same i-order they were pushed above.
    let mut coef = values.to_vec();
    let mut offset = 0;
    for j in 1..n {
        for i in (j..n).rev() {
            coef[i] = (coef[i] - coef[i - 1]) * denominators[offset + (i - j)];
        }
        offset += n - j;
    }

    // Expand the Newton form ∑ coef[i]·∏_{k<i}(z − z_k) by Horner's rule.
    let mut poly = Poly::zero();
    for i in (0..n).rev() {
        let linear = Poly::from_coeffs(vec![-points[i], Fp::ONE]);
        poly = poly.mul(&linear).add(&Poly::constant(coef[i]));
    }
    Some(poly)
}

/// Rational function reconstruction: the minimal `(r, t)` with
/// `r ≡ t·n (mod m)` and `deg r ≤ numerator_bound`, via the extended Euclidean
/// algorithm (only the `t` cofactor sequence is tracked).
///
/// Returns `None` when no usable pair exists (the cofactor degenerates to
/// zero), which callers treat as "fall back to dense elimination".
pub fn rational_reconstruct(m: &Poly, n: &Poly, numerator_bound: usize) -> Option<(Poly, Poly)> {
    let mut r0 = m.clone();
    let mut t0 = Poly::zero();
    let mut r1 = n.clone();
    let mut t1 = Poly::one();
    while r1.degree().is_some_and(|d| d > numerator_bound) {
        let (quotient, remainder) = r0.divmod(&r1);
        let t2 = t0.sub(&quotient.mul(&t1));
        r0 = r1;
        t0 = t1;
        r1 = remainder;
        t1 = t2;
    }
    if t1.is_zero() {
        return None;
    }
    Some((r1, t1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp(v: u64) -> Fp {
        Fp::new(v)
    }

    #[test]
    fn batch_invert_matches_scalar_inversion() {
        let mut values: Vec<Fp> = [3u64, 7, 1, 123_456, (1 << 60) + 5].map(fp).to_vec();
        let expected: Vec<Fp> = values.iter().map(|v| v.inv()).collect();
        assert!(batch_invert(&mut values));
        assert_eq!(values, expected);
    }

    #[test]
    fn batch_invert_rejects_zero_and_preserves_input() {
        let mut values = vec![fp(4), Fp::ZERO, fp(9)];
        let before = values.clone();
        assert!(!batch_invert(&mut values));
        assert_eq!(values, before);
        assert!(batch_invert(&mut []));
    }

    #[test]
    fn interpolation_hits_every_point() {
        let points: Vec<Fp> = (100..120u64).map(fp).collect();
        let values: Vec<Fp> = (0..20u64).map(|i| fp(i * i * 31 + 7)).collect();
        let p = interpolate(&points, &values).unwrap();
        assert!(p.degree().unwrap_or(0) < points.len());
        for (z, v) in points.iter().zip(&values) {
            assert_eq!(p.eval(*z), *v);
        }
    }

    #[test]
    fn interpolation_rejects_repeated_points() {
        let points = vec![fp(1), fp(2), fp(1)];
        let values = vec![fp(5), fp(6), fp(7)];
        assert!(interpolate(&points, &values).is_none());
    }

    #[test]
    fn reconstructs_a_rational_function_from_values() {
        // P/Q with P = (z−3)(z−8), Q = (z−100), over p+q+1 = 4 points.
        let p_true = Poly::from_roots(&[fp(3), fp(8)]);
        let q_true = Poly::from_roots(&[fp(100)]);
        let points: Vec<Fp> = (1000..1004u64).map(fp).collect();
        let values: Vec<Fp> = points.iter().map(|&z| p_true.eval(z) / q_true.eval(z)).collect();
        let m = Poly::from_roots(&points);
        let n = interpolate(&points, &values).unwrap();
        let (r, t) = rational_reconstruct(&m, &n, 2).unwrap();
        let g = r.gcd(&t);
        let (p_red, _) = r.divmod(&g);
        let (q_red, _) = t.divmod(&g);
        assert_eq!(p_red.monic(), p_true);
        assert_eq!(q_red.monic(), q_true);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Reconstruction over p + q + 1 points recovers random coprime monic
        /// fractions exactly, including through loose degree bounds.
        #[test]
        fn random_fractions_roundtrip(
            num_roots in proptest::collection::hash_set(0u64..1 << 40, 0usize..6),
            den_roots in proptest::collection::hash_set((1u64 << 41)..(1 << 42), 0usize..6),
            slack in 0usize..3,
        ) {
            let p_true = Poly::from_roots(&num_roots.iter().map(|&r| fp(r)).collect::<Vec<_>>());
            let q_true = Poly::from_roots(&den_roots.iter().map(|&r| fp(r)).collect::<Vec<_>>());
            let p_deg = p_true.degree().unwrap_or(0) + slack;
            let q_deg = q_true.degree().unwrap_or(0) + slack;
            // Evaluation points distinct from every root.
            let points: Vec<Fp> = (0..p_deg + q_deg + 1)
                .map(|i| fp((1u64 << 59) + i as u64))
                .collect();
            let mut denominators: Vec<Fp> = points.iter().map(|&z| q_true.eval(z)).collect();
            prop_assert!(batch_invert(&mut denominators));
            let values: Vec<Fp> = points
                .iter()
                .zip(&denominators)
                .map(|(&z, &inv)| p_true.eval(z) * inv)
                .collect();
            let m = Poly::from_roots(&points);
            let n = interpolate(&points, &values).unwrap();
            let (r, t) = rational_reconstruct(&m, &n, p_deg).unwrap();
            let g = r.gcd(&t);
            let (p_red, _) = r.divmod(&g);
            let (q_red, _) = t.divmod(&g);
            prop_assert_eq!(p_red.monic(), p_true);
            prop_assert_eq!(q_red.monic(), q_true);
        }
    }
}
