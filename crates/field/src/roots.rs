//! Root finding over GF(2^61 − 1) for polynomials that split into distinct linear
//! factors.
//!
//! The characteristic-polynomial protocol (Theorem 2.3) recovers the set difference
//! as the roots of the interpolated numerator and denominator, both of which split
//! completely over the field (their roots are set elements). We use the classic
//! Cantor–Zassenhaus approach:
//!
//! 1. reduce to the part of the polynomial whose roots lie in GF(p) by taking
//!    `gcd(f, z^p − z)` (computed as `pow_mod(z, p, f) − z`),
//! 2. split recursively: pick a random shift `a`, compute
//!    `g = gcd((z + a)^((p−1)/2) − 1, f)`; with probability ≈ 1/2 this separates the
//!    roots into two non-trivial groups, and the recursion bottoms out at linear
//!    factors.
//!
//! Expected running time is `O(deg(f)^2 log p)` field operations, comfortably within
//! the `O(d^3)` budget of Theorem 2.3 for the difference sizes the paper targets.

use crate::fp::{Fp, MODULUS};
use crate::poly::Poly;
use recon_base::rng::Xoshiro256;

/// Find all roots (in GF(2^61 − 1)) of `f`, assuming they are distinct.
///
/// Returns the roots in unspecified order. Non-root factors (irreducible factors of
/// degree ≥ 2) are ignored, which is exactly the behaviour the reconciliation layer
/// wants: if the interpolated polynomial does not split completely, the recovered
/// root set will be too small and the caller's verification hash will reject it.
pub fn find_roots(f: &Poly, seed: u64) -> Vec<Fp> {
    let mut roots = Vec::new();
    if f.is_zero() || f.degree() == Some(0) {
        return roots;
    }
    let mut rng = Xoshiro256::new(seed ^ 0x005E_ED0F_2007_5EED);
    // Keep only the square-free part with roots in the field: gcd(f, z^p − z).
    let f = f.monic();
    let zp = Poly::x().pow_mod(MODULUS, &f);
    let zp_minus_z = zp.sub(&Poly::x());
    let split_part = if zp_minus_z.is_zero() { f.clone() } else { f.gcd(&zp_minus_z) };
    if split_part.degree().is_none() || split_part.degree() == Some(0) {
        return roots;
    }
    split(&split_part, &mut rng, &mut roots);
    roots
}

fn split(f: &Poly, rng: &mut Xoshiro256, roots: &mut Vec<Fp>) {
    match f.degree() {
        None | Some(0) => {}
        Some(1) => {
            // f = z + c  =>  root = -c (f is monic).
            let c = f.coeffs()[0];
            roots.push(-c);
        }
        Some(_) => {
            // Try random shifts until the equal-degree split separates the roots.
            loop {
                let a = Fp::new(rng.next_u64());
                let shifted = Poly::from_coeffs(vec![a, Fp::ONE]); // z + a
                let h = shifted.pow_mod((MODULUS - 1) / 2, f);
                let g = f.gcd(&h.sub(&Poly::one()));
                let deg_g = g.degree().unwrap_or(0);
                let deg_f = f.degree().unwrap_or(0);
                if deg_g > 0 && deg_g < deg_f {
                    let (quotient, remainder) = f.divmod(&g);
                    debug_assert!(remainder.is_zero());
                    split(&g, rng, roots);
                    split(&quotient, rng, roots);
                    return;
                }
                // Also handle the complementary factor directly when gcd caught
                // everything or nothing: just retry with a new shift.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn roots_of(values: &[u64], seed: u64) -> HashSet<u64> {
        let roots: Vec<Fp> = values.iter().map(|&v| Fp::new(v)).collect();
        let poly = Poly::from_roots(&roots);
        find_roots(&poly, seed).into_iter().map(Fp::value).collect()
    }

    #[test]
    fn constant_polynomials_have_no_roots() {
        assert!(find_roots(&Poly::one(), 1).is_empty());
        assert!(find_roots(&Poly::zero(), 1).is_empty());
    }

    #[test]
    fn linear_polynomial_root() {
        let p = Poly::from_roots(&[Fp::new(12345)]);
        let r = find_roots(&p, 7);
        assert_eq!(r, vec![Fp::new(12345)]);
    }

    #[test]
    fn recovers_small_root_sets() {
        let expected: HashSet<u64> = [3u64, 17, 1000, 65_536].into_iter().collect();
        assert_eq!(roots_of(&[3, 17, 1000, 65_536], 42), expected);
    }

    #[test]
    fn recovers_larger_root_sets() {
        let values: Vec<u64> = (0..64u64).map(|i| i * i + 7).collect();
        let expected: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(roots_of(&values, 99), expected);
    }

    #[test]
    fn works_with_adjacent_roots() {
        let values: Vec<u64> = (1_000_000..1_000_032).collect();
        let expected: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(roots_of(&values, 5), expected);
    }

    #[test]
    fn ignores_irreducible_factors() {
        // (z - 5) * (z^2 + z + some non-residue structure): build an irreducible
        // quadratic by taking a polynomial with no roots: z^2 + 1 may factor depending
        // on p; instead test that the count of recovered roots never exceeds the
        // number of true roots.
        let with_root = Poly::from_roots(&[Fp::new(5)]);
        let quadratic = Poly::from_coeffs(vec![Fp::new(1), Fp::new(0), Fp::new(1)]); // z^2 + 1
        let product = with_root.mul(&quadratic);
        let roots = find_roots(&product, 11);
        assert!(roots.contains(&Fp::new(5)));
        for r in roots {
            assert_eq!(product.eval(r), Fp::ZERO);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = find_roots(&Poly::from_roots(&[Fp::new(1), Fp::new(2), Fp::new(3)]), 123);
        let mut b = find_roots(&Poly::from_roots(&[Fp::new(1), Fp::new(2), Fp::new(3)]), 123);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_root_sets_roundtrip(
            values in proptest::collection::hash_set(1u64..u64::MAX >> 4, 1..24),
            seed in any::<u64>(),
        ) {
            let expected: HashSet<u64> =
                values.iter().map(|&v| Fp::new(v).value()).collect();
            let roots: Vec<Fp> = expected.iter().map(|&v| Fp::new(v)).collect();
            let poly = Poly::from_roots(&roots);
            let found: HashSet<u64> =
                find_roots(&poly, seed).into_iter().map(Fp::value).collect();
            prop_assert_eq!(found, expected);
        }
    }
}
