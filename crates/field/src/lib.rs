//! # recon-field
//!
//! Finite-field arithmetic and polynomial machinery for the characteristic-polynomial
//! set reconciliation protocol (Theorem 2.3 of *"Reconciling Graphs and Sets of
//! Sets"*, after Minsky, Trachtenberg & Zippel 2003).
//!
//! The protocol represents a set `S = {x_1, …, x_n}` by its characteristic polynomial
//! `χ_S(z) = (z − x_1)(z − x_2)⋯(z − x_n)` over a prime field, transmits evaluations
//! of `χ_S` at a few agreed-upon points, interpolates the rational function
//! `χ_{S_A}(z) / χ_{S_B}(z)` from those evaluations (a linear system, solved by
//! Gaussian elimination), and recovers the set difference as the roots of the
//! numerator and denominator.
//!
//! This crate provides the substrate:
//!
//! * [`fp::Fp`] — the prime field GF(2^61 − 1) (a Mersenne prime, so reduction is a
//!   couple of shifts and adds; the universe of 64-bit-word elements used throughout
//!   the paper embeds directly as long as elements are `< 2^61 − 1`),
//! * [`poly::Poly`] — dense univariate polynomials with multiplication, Euclidean
//!   division, GCD, evaluation and construction from roots,
//! * [`linalg`] — Gaussian elimination over GF(2^61 − 1) on a flat row-major
//!   coefficient bank (the dense `O(d^3)` fallback),
//! * [`gf2`] — sparse bitset Gaussian elimination over GF(2) with tracked
//!   combination masks (the IBLT decode-rescue substrate),
//! * [`structured`] — the `O(d^2)` structured solve for the rational
//!   interpolation system (Newton interpolation + extended-Euclidean rational
//!   reconstruction, plus Montgomery batch inversion),
//! * [`roots`] — root finding for polynomials that split into distinct linear
//!   factors, via Cantor–Zassenhaus equal-degree splitting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fp;
pub mod gf2;
pub mod linalg;
pub mod poly;
pub mod roots;
pub mod structured;

pub use fp::{Fp, MODULUS};
pub use gf2::{BitVec, SubsetSolution, SubsetXorSolver};
pub use linalg::{solve_consistent, solve_consistent_flat, solve_linear_system};
pub use poly::Poly;
pub use roots::find_roots;
pub use structured::{batch_invert, interpolate, rational_reconstruct};
