//! Gaussian elimination over GF(2^61 − 1).
//!
//! Theorem 2.3 of the paper costs its characteristic-polynomial protocol at
//! `O(d^3)` for "computing the roots of the ratio of polynomials ... via Gaussian
//! elimination". The elimination step is the rational-function interpolation: given
//! evaluations of `χ_{S_A}/χ_{S_B}` at `d` points, the unknown coefficients of the
//! (monic) numerator and denominator satisfy a `d × d` linear system, solved here.

// Row/column index arithmetic is the clearest way to write Gaussian elimination;
// iterator rewrites obscure the pivoting structure.
#![allow(clippy::needless_range_loop, clippy::assign_op_pattern)]

use crate::fp::Fp;

/// Solve the square linear system `A·x = b` over GF(2^61 − 1).
///
/// Returns `None` when the matrix is singular (the reconciliation layer treats that
/// as "the difference bound was wrong — retry with more evaluations", never as a
/// silent failure). `matrix` is row-major and must be `n × n` with `b` of length `n`.
pub fn solve_linear_system(matrix: &[Vec<Fp>], rhs: &[Fp]) -> Option<Vec<Fp>> {
    let n = rhs.len();
    assert_eq!(matrix.len(), n, "matrix must be square and match the rhs length");
    for row in matrix {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    if n == 0 {
        return Some(Vec::new());
    }

    // Augmented matrix.
    let mut a: Vec<Vec<Fp>> = matrix
        .iter()
        .zip(rhs)
        .map(|(row, &b)| {
            let mut r = row.clone();
            r.push(b);
            r
        })
        .collect();

    for col in 0..n {
        // Find a pivot.
        let pivot_row = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot_row);
        let pivot_inv = a[col][col].inv();
        for j in col..=n {
            a[col][j] = a[col][j] * pivot_inv;
        }
        for r in 0..n {
            if r != col && !a[r][col].is_zero() {
                let factor = a[r][col];
                for j in col..=n {
                    let sub = factor * a[col][j];
                    a[r][j] = a[r][j] - sub;
                }
            }
        }
    }

    Some(a.into_iter().map(|row| row[row.len() - 1]).collect())
}

/// Solve `A·x = b` allowing a rank-deficient (but consistent) system.
///
/// The characteristic-polynomial protocol interpolates a rational function of degree
/// equal to the *bound* `d`, which is usually larger than the true difference; the
/// resulting system is then underdetermined (any common factor of numerator and
/// denominator is a valid solution). This routine performs row-echelon elimination,
/// assigns zero to free variables, and returns `None` only if the system is
/// inconsistent.
pub fn solve_consistent(matrix: &[Vec<Fp>], rhs: &[Fp]) -> Option<Vec<Fp>> {
    let rows = matrix.len();
    assert_eq!(rows, rhs.len(), "matrix and rhs must have the same number of rows");
    let cols = matrix.first().map_or(0, Vec::len);
    for row in matrix {
        assert_eq!(row.len(), cols, "all rows must have the same length");
    }
    if cols == 0 {
        return if rhs.iter().all(|b| b.is_zero()) { Some(Vec::new()) } else { None };
    }

    let mut a: Vec<Vec<Fp>> = matrix
        .iter()
        .zip(rhs)
        .map(|(row, &b)| {
            let mut r = row.clone();
            r.push(b);
            r
        })
        .collect();

    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0usize;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        let Some(r) = (pivot_row..rows).find(|&r| !a[r][col].is_zero()) else {
            continue;
        };
        a.swap(pivot_row, r);
        let inv = a[pivot_row][col].inv();
        for j in col..=cols {
            a[pivot_row][j] = a[pivot_row][j] * inv;
        }
        for rr in 0..rows {
            if rr != pivot_row && !a[rr][col].is_zero() {
                let factor = a[rr][col];
                for j in col..=cols {
                    let sub = factor * a[pivot_row][j];
                    a[rr][j] = a[rr][j] - sub;
                }
            }
        }
        pivot_cols.push((pivot_row, col));
        pivot_row += 1;
    }

    // Inconsistent if a zero row has a non-zero rhs.
    for r in pivot_row..rows {
        if a[r][..cols].iter().all(|c| c.is_zero()) && !a[r][cols].is_zero() {
            return None;
        }
    }

    let mut x = vec![Fp::ZERO; cols];
    for &(r, c) in &pivot_cols {
        x[c] = a[r][cols];
    }
    Some(x)
}

/// Multiply a square matrix by a vector (testing helper, also used by the
/// charpoly protocol's self-checks).
pub fn mat_vec(matrix: &[Vec<Fp>], x: &[Fp]) -> Vec<Fp> {
    matrix.iter().map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp(v: u64) -> Fp {
        Fp::new(v)
    }

    #[test]
    fn solves_identity_system() {
        let matrix = vec![vec![fp(1), fp(0)], vec![fp(0), fp(1)]];
        let rhs = vec![fp(5), fp(9)];
        assert_eq!(solve_linear_system(&matrix, &rhs), Some(rhs));
    }

    #[test]
    fn solves_small_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1
        let matrix = vec![vec![fp(1), fp(1)], vec![fp(1), -fp(1)]];
        let rhs = vec![fp(3), fp(1)];
        let x = solve_linear_system(&matrix, &rhs).unwrap();
        assert_eq!(x, vec![fp(2), fp(1)]);
    }

    #[test]
    fn detects_singular_matrix() {
        let matrix = vec![vec![fp(1), fp(2)], vec![fp(2), fp(4)]];
        let rhs = vec![fp(1), fp(2)];
        assert_eq!(solve_linear_system(&matrix, &rhs), None);
    }

    #[test]
    fn empty_system_is_trivially_solved() {
        assert_eq!(solve_linear_system(&[], &[]), Some(vec![]));
    }

    #[test]
    fn solve_consistent_handles_underdetermined_systems() {
        // x + y = 3 with two unknowns: rank 1, pick y = 0 => x = 3.
        let matrix = vec![vec![fp(1), fp(1)]];
        let rhs = vec![fp(3)];
        let x = solve_consistent(&matrix, &rhs).unwrap();
        assert_eq!(mat_vec_rect(&matrix, &x), rhs);
    }

    #[test]
    fn solve_consistent_detects_inconsistency() {
        // x + y = 3 and x + y = 4 cannot both hold.
        let matrix = vec![vec![fp(1), fp(1)], vec![fp(1), fp(1)]];
        let rhs = vec![fp(3), fp(4)];
        assert_eq!(solve_consistent(&matrix, &rhs), None);
    }

    #[test]
    fn solve_consistent_matches_exact_solver_on_full_rank() {
        let matrix = vec![vec![fp(2), fp(1)], vec![fp(1), fp(3)]];
        let rhs = vec![fp(5), fp(10)];
        let exact = solve_linear_system(&matrix, &rhs).unwrap();
        let any = solve_consistent(&matrix, &rhs).unwrap();
        assert_eq!(exact, any);
    }

    fn mat_vec_rect(matrix: &[Vec<Fp>], x: &[Fp]) -> Vec<Fp> {
        matrix.iter().map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum()).collect()
    }

    #[test]
    fn requires_pivoting() {
        // First pivot is zero; the solver must swap rows.
        let matrix = vec![vec![fp(0), fp(1)], vec![fp(1), fp(0)]];
        let rhs = vec![fp(7), fp(3)];
        let x = solve_linear_system(&matrix, &rhs).unwrap();
        assert_eq!(x, vec![fp(3), fp(7)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_systems_roundtrip(
            entries in proptest::collection::vec(any::<u64>(), 9),
            xs in proptest::collection::vec(any::<u64>(), 3),
        ) {
            let matrix: Vec<Vec<Fp>> = entries
                .chunks(3)
                .map(|row| row.iter().map(|&v| Fp::new(v)).collect())
                .collect();
            let x: Vec<Fp> = xs.into_iter().map(Fp::new).collect();
            let b = mat_vec(&matrix, &x);
            if let Some(solution) = solve_linear_system(&matrix, &b) {
                // The matrix may be singular with multiple solutions; checking A·sol = b
                // is the invariant that must always hold.
                prop_assert_eq!(mat_vec(&matrix, &solution), b);
            }
        }
    }
}
