//! Gaussian elimination over GF(2^61 − 1), on a flat row-major coefficient bank.
//!
//! Theorem 2.3 of the paper costs its characteristic-polynomial protocol at
//! `O(d^3)` for "computing the roots of the ratio of polynomials ... via Gaussian
//! elimination". The elimination step is the rational-function interpolation: given
//! evaluations of `χ_{S_A}/χ_{S_B}` at `d` points, the unknown coefficients of the
//! (monic) numerator and denominator satisfy a `d × d` linear system, solved here.
//! (The charpoly protocol itself first tries the `O(d^2)` structured solver in
//! [`crate::structured`] and only falls back to this dense elimination.)
//!
//! # Storage
//!
//! The augmented system lives in one flat row-major `Vec<Fp>` with stride
//! `cols + 1`; rows are addressed through a row-index permutation, so pivoting
//! swaps two `usize`s instead of cloning or moving row storage.

use crate::fp::Fp;

/// The flat augmented bank behind both solvers: `rows` logical rows of
/// `cols + 1` elements (coefficients then right-hand side), addressed through a
/// row permutation so pivot swaps never touch the element storage.
struct AugmentedBank {
    data: Vec<Fp>,
    stride: usize,
    /// `row_of[logical]` = physical row index into `data`.
    row_of: Vec<usize>,
}

impl AugmentedBank {
    fn new(matrix: &[Fp], rows: usize, cols: usize, rhs: &[Fp]) -> Self {
        let stride = cols + 1;
        let mut data = Vec::with_capacity(rows * stride);
        for r in 0..rows {
            data.extend_from_slice(&matrix[r * cols..(r + 1) * cols]);
            data.push(rhs[r]);
        }
        Self { data, stride, row_of: (0..rows).collect() }
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> Fp {
        self.data[self.row_of[row] * self.stride + col]
    }

    /// Swap two logical rows (an index swap; the bank itself is untouched).
    #[inline]
    fn swap_rows(&mut self, a: usize, b: usize) {
        self.row_of.swap(a, b);
    }

    /// Scale `row` by `factor` from `from_col` to the end (rhs included).
    fn scale_row(&mut self, row: usize, from_col: usize, factor: Fp) {
        let start = self.row_of[row] * self.stride;
        for v in &mut self.data[start + from_col..start + self.stride] {
            *v *= factor;
        }
    }

    /// `row -= factor · pivot_row` from `from_col` to the end (rhs included).
    fn eliminate(&mut self, row: usize, pivot_row: usize, from_col: usize, factor: Fp) {
        let dst = self.row_of[row] * self.stride;
        let src = self.row_of[pivot_row] * self.stride;
        for j in from_col..self.stride {
            let sub = factor * self.data[src + j];
            self.data[dst + j] -= sub;
        }
    }
}

/// Solve the square `n × n` system `A·x = b` over GF(2^61 − 1), with `matrix`
/// given as a flat row-major bank of length `n·n`.
///
/// Returns `None` when the matrix is singular (the reconciliation layer treats
/// that as "the difference bound was wrong — retry with more evaluations", never
/// as a silent failure).
pub fn solve_linear_system_flat(matrix: &[Fp], n: usize, rhs: &[Fp]) -> Option<Vec<Fp>> {
    assert_eq!(matrix.len(), n * n, "matrix must be n × n");
    assert_eq!(rhs.len(), n, "rhs must have n entries");
    if n == 0 {
        return Some(Vec::new());
    }
    // An all-zero matrix is singular for n ≥ 1; bail before building the bank.
    if matrix.iter().all(|c| c.is_zero()) {
        return None;
    }

    let mut bank = AugmentedBank::new(matrix, n, n, rhs);
    for col in 0..n {
        let pivot = (col..n).find(|&r| !bank.at(r, col).is_zero())?;
        bank.swap_rows(col, pivot);
        bank.scale_row(col, col, bank.at(col, col).inv());
        for r in 0..n {
            if r != col && !bank.at(r, col).is_zero() {
                let factor = bank.at(r, col);
                bank.eliminate(r, col, col, factor);
            }
        }
    }
    Some((0..n).map(|r| bank.at(r, n)).collect())
}

/// Solve `A·x = b` allowing a rank-deficient (but consistent) system, with
/// `matrix` given as a flat row-major `rows × cols` bank.
///
/// The characteristic-polynomial protocol interpolates a rational function of
/// degree equal to the *bound* `d`, which is usually larger than the true
/// difference; the resulting system is then underdetermined (any common factor of
/// numerator and denominator is a valid solution). This routine performs
/// row-echelon elimination with index-swapped pivoting, assigns zero to free
/// variables, and returns `None` only if the system is inconsistent.
pub fn solve_consistent_flat(
    matrix: &[Fp],
    rows: usize,
    cols: usize,
    rhs: &[Fp],
) -> Option<Vec<Fp>> {
    assert_eq!(matrix.len(), rows * cols, "matrix must be rows × cols");
    assert_eq!(rhs.len(), rows, "matrix and rhs must have the same number of rows");
    if cols == 0 {
        return if rhs.iter().all(|b| b.is_zero()) { Some(Vec::new()) } else { None };
    }
    // All-zero matrix: consistent exactly when the rhs is zero, with the all-zero
    // vector as the canonical solution — no bank allocation needed.
    if matrix.iter().all(|c| c.is_zero()) {
        return rhs.iter().all(|b| b.is_zero()).then(|| vec![Fp::ZERO; cols]);
    }

    let mut bank = AugmentedBank::new(matrix, rows, cols, rhs);
    let mut pivot_cols: Vec<(usize, usize)> = Vec::new();
    let mut pivot_row = 0usize;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        let Some(r) = (pivot_row..rows).find(|&r| !bank.at(r, col).is_zero()) else {
            continue;
        };
        bank.swap_rows(pivot_row, r);
        bank.scale_row(pivot_row, col, bank.at(pivot_row, col).inv());
        for rr in 0..rows {
            if rr != pivot_row && !bank.at(rr, col).is_zero() {
                let factor = bank.at(rr, col);
                bank.eliminate(rr, pivot_row, col, factor);
            }
        }
        pivot_cols.push((pivot_row, col));
        pivot_row += 1;
    }

    // Inconsistent if a zero row has a non-zero rhs.
    for r in pivot_row..rows {
        if (0..cols).all(|c| bank.at(r, c).is_zero()) && !bank.at(r, cols).is_zero() {
            return None;
        }
    }

    let mut x = vec![Fp::ZERO; cols];
    for &(r, c) in &pivot_cols {
        x[c] = bank.at(r, cols);
    }
    Some(x)
}

/// Solve the square linear system `A·x = b` with `matrix` given row by row
/// (adapter over [`solve_linear_system_flat`] for callers holding nested rows).
pub fn solve_linear_system(matrix: &[Vec<Fp>], rhs: &[Fp]) -> Option<Vec<Fp>> {
    let n = rhs.len();
    assert_eq!(matrix.len(), n, "matrix must be square and match the rhs length");
    for row in matrix {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    let flat: Vec<Fp> = matrix.iter().flatten().copied().collect();
    solve_linear_system_flat(&flat, n, rhs)
}

/// Solve `A·x = b` allowing a rank-deficient (but consistent) system, with
/// `matrix` given row by row (adapter over [`solve_consistent_flat`]).
pub fn solve_consistent(matrix: &[Vec<Fp>], rhs: &[Fp]) -> Option<Vec<Fp>> {
    let rows = matrix.len();
    assert_eq!(rows, rhs.len(), "matrix and rhs must have the same number of rows");
    let cols = matrix.first().map_or(0, Vec::len);
    for row in matrix {
        assert_eq!(row.len(), cols, "all rows must have the same length");
    }
    let flat: Vec<Fp> = matrix.iter().flatten().copied().collect();
    solve_consistent_flat(&flat, rows, cols, rhs)
}

/// Multiply a square matrix by a vector (testing helper, also used by the
/// charpoly protocol's self-checks).
pub fn mat_vec(matrix: &[Vec<Fp>], x: &[Fp]) -> Vec<Fp> {
    matrix.iter().map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp(v: u64) -> Fp {
        Fp::new(v)
    }

    #[test]
    fn solves_identity_system() {
        let matrix = vec![vec![fp(1), fp(0)], vec![fp(0), fp(1)]];
        let rhs = vec![fp(5), fp(9)];
        assert_eq!(solve_linear_system(&matrix, &rhs), Some(rhs));
    }

    #[test]
    fn solves_small_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1
        let matrix = vec![vec![fp(1), fp(1)], vec![fp(1), -fp(1)]];
        let rhs = vec![fp(3), fp(1)];
        let x = solve_linear_system(&matrix, &rhs).unwrap();
        assert_eq!(x, vec![fp(2), fp(1)]);
    }

    #[test]
    fn detects_singular_matrix() {
        let matrix = vec![vec![fp(1), fp(2)], vec![fp(2), fp(4)]];
        let rhs = vec![fp(1), fp(2)];
        assert_eq!(solve_linear_system(&matrix, &rhs), None);
    }

    #[test]
    fn empty_system_is_trivially_solved() {
        assert_eq!(solve_linear_system(&[], &[]), Some(vec![]));
    }

    #[test]
    fn all_zero_matrix_short_circuits() {
        // Square: singular.
        let matrix = vec![vec![fp(0), fp(0)], vec![fp(0), fp(0)]];
        assert_eq!(solve_linear_system(&matrix, &[fp(0), fp(0)]), None);
        // Consistent solver: zero rhs admits the zero solution, non-zero rhs is
        // inconsistent.
        assert_eq!(solve_consistent(&matrix, &[fp(0), fp(0)]), Some(vec![fp(0), fp(0)]));
        assert_eq!(solve_consistent(&matrix, &[fp(0), fp(3)]), None);
    }

    #[test]
    fn solve_consistent_handles_underdetermined_systems() {
        // x + y = 3 with two unknowns: rank 1, pick y = 0 => x = 3.
        let matrix = vec![vec![fp(1), fp(1)]];
        let rhs = vec![fp(3)];
        let x = solve_consistent(&matrix, &rhs).unwrap();
        assert_eq!(mat_vec_rect(&matrix, &x), rhs);
    }

    #[test]
    fn solve_consistent_detects_inconsistency() {
        // x + y = 3 and x + y = 4 cannot both hold.
        let matrix = vec![vec![fp(1), fp(1)], vec![fp(1), fp(1)]];
        let rhs = vec![fp(3), fp(4)];
        assert_eq!(solve_consistent(&matrix, &rhs), None);
    }

    #[test]
    fn solve_consistent_matches_exact_solver_on_full_rank() {
        let matrix = vec![vec![fp(2), fp(1)], vec![fp(1), fp(3)]];
        let rhs = vec![fp(5), fp(10)];
        let exact = solve_linear_system(&matrix, &rhs).unwrap();
        let any = solve_consistent(&matrix, &rhs).unwrap();
        assert_eq!(exact, any);
    }

    fn mat_vec_rect(matrix: &[Vec<Fp>], x: &[Fp]) -> Vec<Fp> {
        matrix.iter().map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum()).collect()
    }

    #[test]
    fn requires_pivoting() {
        // First pivot is zero; the solver must swap rows.
        let matrix = vec![vec![fp(0), fp(1)], vec![fp(1), fp(0)]];
        let rhs = vec![fp(7), fp(3)];
        let x = solve_linear_system(&matrix, &rhs).unwrap();
        assert_eq!(x, vec![fp(3), fp(7)]);
    }

    #[test]
    fn flat_and_nested_entry_points_agree() {
        let matrix = vec![vec![fp(2), fp(7), fp(1)], vec![fp(0), fp(3), fp(9)]];
        let flat: Vec<Fp> = matrix.iter().flatten().copied().collect();
        let rhs = vec![fp(4), fp(6)];
        assert_eq!(solve_consistent(&matrix, &rhs), solve_consistent_flat(&flat, 2, 3, &rhs));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_systems_roundtrip(
            entries in proptest::collection::vec(any::<u64>(), 9),
            xs in proptest::collection::vec(any::<u64>(), 3),
        ) {
            let matrix: Vec<Vec<Fp>> = entries
                .chunks(3)
                .map(|row| row.iter().map(|&v| Fp::new(v)).collect())
                .collect();
            let x: Vec<Fp> = xs.into_iter().map(Fp::new).collect();
            let b = mat_vec(&matrix, &x);
            if let Some(solution) = solve_linear_system(&matrix, &b) {
                // The matrix may be singular with multiple solutions; checking A·sol = b
                // is the invariant that must always hold.
                prop_assert_eq!(mat_vec(&matrix, &solution), b);
            }
        }

        /// Consistent rectangular systems built from a known solution always
        /// solve, and the solution satisfies the system.
        #[test]
        fn random_rectangular_systems_solve(
            entries in proptest::collection::vec(any::<u64>(), 12),
            xs in proptest::collection::vec(any::<u64>(), 4),
        ) {
            let matrix: Vec<Vec<Fp>> = entries
                .chunks(4)
                .map(|row| row.iter().map(|&v| Fp::new(v)).collect())
                .collect();
            let x: Vec<Fp> = xs.into_iter().map(Fp::new).collect();
            let b = mat_vec_rect(&matrix, &x);
            let solution = solve_consistent(&matrix, &b).expect("consistent by construction");
            prop_assert_eq!(mat_vec_rect(&matrix, &solution), b);
        }
    }
}
