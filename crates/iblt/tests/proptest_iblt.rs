//! Property-based tests of the IBLT invariants that Theorem 2.1 and the set-of-sets
//! protocols rely on.

use proptest::prelude::*;
use recon_iblt::{Iblt, IbltConfig};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insert-then-delete of the same multiset of keys always leaves an empty table,
    /// regardless of interleaving.
    #[test]
    fn insert_delete_cancels(keys in proptest::collection::vec(any::<u64>(), 0..200), seed in any::<u64>()) {
        let cfg = IbltConfig::for_u64_keys(seed);
        let mut table = Iblt::with_expected_diff(8, &cfg);
        for &k in &keys {
            table.insert_u64(k);
        }
        for &k in &keys {
            table.delete_u64(k);
        }
        prop_assert!(table.is_empty());
        let decoded = table.decode();
        prop_assert!(decoded.complete);
        prop_assert_eq!(decoded.recovered(), 0);
    }

    /// Subtraction of two tables encoding overlapping sets recovers exactly the
    /// symmetric difference whenever the decode reports completeness, and the decode
    /// reports completeness for adequately provisioned tables in the vast majority
    /// of cases.
    #[test]
    fn subtract_recovers_symmetric_difference(
        shared in proptest::collection::hash_set(any::<u64>(), 0..300),
        only_a in proptest::collection::hash_set(any::<u64>(), 0..20),
        only_b in proptest::collection::hash_set(any::<u64>(), 0..20),
        seed in any::<u64>(),
    ) {
        let only_a: HashSet<u64> = only_a.difference(&shared).copied().collect();
        let only_b: HashSet<u64> = only_b.difference(&shared).copied().collect();
        let only_b: HashSet<u64> = only_b.difference(&only_a).copied().collect();
        let cfg = IbltConfig::for_u64_keys(seed);
        let d = only_a.len() + only_b.len();
        let mut alice = Iblt::with_expected_diff(d.max(1), &cfg);
        let mut bob = Iblt::with_expected_diff(d.max(1), &cfg);
        for &k in shared.iter().chain(&only_a) {
            alice.insert_u64(k);
        }
        for &k in shared.iter().chain(&only_b) {
            bob.insert_u64(k);
        }
        let decoded = alice.subtract(&bob).unwrap().decode();
        if decoded.complete {
            let pos: HashSet<u64> = decoded.positive_u64().into_iter().collect();
            let neg: HashSet<u64> = decoded.negative_u64().into_iter().collect();
            prop_assert_eq!(pos, only_a);
            prop_assert_eq!(neg, only_b);
        }
    }

    /// Wire round-trip is lossless for arbitrary table contents.
    #[test]
    fn wire_roundtrip(
        inserts in proptest::collection::vec(any::<u64>(), 0..64),
        deletes in proptest::collection::vec(any::<u64>(), 0..64),
        seed in any::<u64>(),
    ) {
        use recon_base::wire::{Decode, Encode};
        let cfg = IbltConfig::for_u64_keys(seed);
        let mut table = Iblt::with_expected_diff(16, &cfg);
        for &k in &inserts {
            table.insert_u64(k);
        }
        for &k in &deletes {
            table.delete_u64(k);
        }
        let bytes = table.to_bytes();
        prop_assert_eq!(bytes.len(), Encode::encoded_len(&table));
        let back = Iblt::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, table);
    }

    /// Decoding never reports more keys than were inserted, and never mutates the
    /// table it runs on.
    #[test]
    fn decode_is_conservative_and_pure(
        keys in proptest::collection::hash_set(any::<u64>(), 0..100),
        seed in any::<u64>(),
    ) {
        let cfg = IbltConfig::for_u64_keys(seed);
        // Deliberately under-provisioned half the time.
        let mut table = Iblt::with_cells(if seed.is_multiple_of(2) { 12 } else { 256 }, &cfg);
        for &k in &keys {
            table.insert_u64(k);
        }
        let before = table.clone();
        let decoded = table.decode();
        prop_assert_eq!(table, before);
        prop_assert!(decoded.recovered() <= keys.len());
        let recovered: HashSet<u64> = decoded.positive_u64().into_iter().collect();
        prop_assert!(recovered.is_subset(&keys));
        prop_assert!(decoded.negative.is_empty());
        if decoded.complete {
            prop_assert_eq!(recovered, keys);
        }
    }
}
