//! Differential tests pinning the flat struct-of-arrays cell bank to a scalar
//! reference model.
//!
//! The reference model is a deliberately naive array-of-structs IBLT built from
//! the same documented primitives (`hash_bytes`/`hash64`/`split_seed`, the
//! partitioned index scheme, the per-cell wire layout). The production table's
//! serialized bytes and peeling results must match it exactly across key widths,
//! hash counts, and mixed insert/delete workloads — so the SoA refactor can
//! never silently change the wire format or the recovered difference. Truncated
//! and corrupted serializations are exercised as well.

use proptest::prelude::*;
use recon_base::hash::{hash64, hash_bytes};
use recon_base::rng::{split_seed, Xoshiro256};
use recon_base::wire::{uvarint_len, write_uvarint, Decode, Encode};
use recon_iblt::{force_scalar_kernels, Iblt, IbltConfig};
use std::sync::Mutex;

/// One reference cell: the layout the production table used before the flat bank.
#[derive(Clone)]
struct RefCell {
    count: i64,
    key_sum: Vec<u8>,
    check_sum: u64,
}

/// Scalar array-of-structs reference IBLT.
struct RefIblt {
    key_bytes: usize,
    hash_count: usize,
    seed: u64,
    cells: Vec<RefCell>,
}

impl RefIblt {
    fn new(cells: usize, cfg: &IbltConfig) -> Self {
        let m = cells.max(cfg.hash_count).div_ceil(cfg.hash_count) * cfg.hash_count;
        Self {
            key_bytes: cfg.key_bytes,
            hash_count: cfg.hash_count,
            seed: cfg.seed,
            cells: (0..m)
                .map(|_| RefCell { count: 0, key_sum: vec![0; cfg.key_bytes], check_sum: 0 })
                .collect(),
        }
    }

    fn indices(&self, key: &[u8]) -> Vec<usize> {
        let part = self.cells.len() / self.hash_count;
        let base = hash_bytes(key, split_seed(self.seed, 0xB0CC));
        (0..self.hash_count)
            .map(|j| {
                let h = hash64(base, split_seed(self.seed, j as u64 + 1));
                j * part + (h % part as u64) as usize
            })
            .collect()
    }

    fn checksum(&self, key: &[u8]) -> u64 {
        hash_bytes(key, split_seed(self.seed, 0xC4EC))
    }

    fn apply(&mut self, key: &[u8], delta: i64) {
        assert_eq!(key.len(), self.key_bytes);
        let checksum = self.checksum(key);
        for idx in self.indices(key) {
            let cell = &mut self.cells[idx];
            cell.count += delta;
            for (dst, src) in cell.key_sum.iter_mut().zip(key) {
                *dst ^= src;
            }
            cell.check_sum ^= checksum;
        }
    }

    fn is_pure(&self, idx: usize) -> bool {
        let cell = &self.cells[idx];
        (cell.count == 1 || cell.count == -1) && self.checksum(&cell.key_sum) == cell.check_sum
    }

    /// Queue-based peel, returning (positive, negative, complete).
    fn decode(mut self) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, bool) {
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.cells.len()).filter(|&i| self.is_pure(i)).collect();
        while let Some(idx) = queue.pop_front() {
            if !self.is_pure(idx) {
                continue;
            }
            let count = self.cells[idx].count;
            let key = self.cells[idx].key_sum.clone();
            if count == 1 {
                positive.push(key.clone());
                self.apply(&key, -1);
            } else {
                negative.push(key.clone());
                self.apply(&key, 1);
            }
            for touched in self.indices(&key) {
                if self.is_pure(touched) {
                    queue.push_back(touched);
                }
            }
        }
        let complete = self
            .cells
            .iter()
            .all(|c| c.count == 0 && c.check_sum == 0 && c.key_sum.iter().all(|&b| b == 0));
        (positive, negative, complete)
    }

    /// The documented wire layout: three header varints, the seed, then
    /// `count | key sum | checksum` per cell.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, self.key_bytes as u64);
        write_uvarint(&mut buf, self.hash_count as u64);
        write_uvarint(&mut buf, self.cells.len() as u64);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        for cell in &self.cells {
            buf.extend_from_slice(&cell.count.to_le_bytes());
            buf.extend_from_slice(&cell.key_sum);
            buf.extend_from_slice(&cell.check_sum.to_le_bytes());
        }
        buf
    }
}

const KEY_WIDTHS: [usize; 4] = [8, 16, 40, 130];
const HASH_COUNTS: [usize; 3] = [3, 4, 5];

/// Build the same random workload into both implementations.
fn build_pair(
    width_sel: usize,
    hash_sel: usize,
    num_keys: usize,
    cells: usize,
    seed: u64,
) -> (Iblt, RefIblt) {
    let key_bytes = KEY_WIDTHS[width_sel % KEY_WIDTHS.len()];
    let hash_count = HASH_COUNTS[hash_sel % HASH_COUNTS.len()];
    let cfg = IbltConfig::for_key_bytes(key_bytes, seed).with_hash_count(hash_count);
    let mut soa = Iblt::with_cells(cells, &cfg);
    let mut reference = RefIblt::new(cells, &cfg);
    let mut rng = Xoshiro256::new(seed ^ 0x50A);
    for i in 0..num_keys {
        let key: Vec<u8> = (0..key_bytes).map(|_| rng.next_u64() as u8).collect();
        if i % 3 == 2 {
            soa.delete(&key);
            reference.apply(&key, -1);
        } else {
            soa.insert(&key);
            reference.apply(&key, 1);
        }
    }
    (soa, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flat bank serializes byte-for-byte like the scalar reference across
    /// key widths and hash counts, and `encoded_len`/`serialized_len` agree.
    #[test]
    fn wire_bytes_match_reference_model(
        width_sel in 0usize..4,
        hash_sel in 0usize..3,
        num_keys in 0usize..60,
        cells in 6usize..64,
        seed in any::<u64>(),
    ) {
        let (soa, reference) = build_pair(width_sel, hash_sel, num_keys, cells, seed);
        let soa_bytes = soa.to_bytes();
        prop_assert_eq!(&soa_bytes, &reference.to_bytes());
        prop_assert_eq!(soa_bytes.len(), soa.encoded_len());
        let cfg = IbltConfig::for_key_bytes(soa.key_bytes(), seed)
            .with_hash_count(soa.hash_count());
        prop_assert_eq!(soa_bytes.len(), cfg.serialized_len(soa.cells()));
        // And the bytes parse back into an identical table.
        prop_assert_eq!(Iblt::from_bytes(&soa_bytes).unwrap(), soa);
    }

    /// Peeling the flat bank recovers exactly the keys the scalar reference
    /// recovers, with the same completeness verdict, via all three decode entry
    /// points (borrowing, consuming, and in-place).
    #[test]
    fn decode_matches_reference_model(
        width_sel in 0usize..4,
        hash_sel in 0usize..3,
        num_keys in 0usize..48,
        cells in 6usize..96,
        seed in any::<u64>(),
    ) {
        let (mut soa, reference) = build_pair(width_sel, hash_sel, num_keys, cells, seed);
        let (mut ref_pos, mut ref_neg, ref_complete) = reference.decode();
        ref_pos.sort();
        ref_neg.sort();

        let borrowed = soa.decode();
        let consumed = soa.clone().into_decode();
        prop_assert_eq!(&borrowed, &consumed);
        let in_place = soa.decode_in_place();
        prop_assert_eq!(&borrowed, &in_place);

        let mut pos = borrowed.positive.clone();
        let mut neg = borrowed.negative.clone();
        pos.sort();
        neg.sort();
        prop_assert_eq!(pos, ref_pos);
        prop_assert_eq!(neg, ref_neg);
        prop_assert_eq!(borrowed.complete, ref_complete);
        // A complete in-place peel drains the bank; an incomplete one leaves the
        // 2-core behind.
        prop_assert_eq!(soa.is_empty(), ref_complete);
    }

    /// Every truncation of a serialized table is rejected, and corrupting a byte
    /// of the cell bank yields a parseable but different table (the header and
    /// geometry survive; the contents must not be silently equal).
    #[test]
    fn truncation_rejected_and_corruption_detected(
        width_sel in 0usize..4,
        hash_sel in 0usize..3,
        num_keys in 1usize..40,
        seed in any::<u64>(),
        cut in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let (soa, _) = build_pair(width_sel, hash_sel, num_keys, 24, seed);
        let bytes = soa.to_bytes();
        let cut = (cut as usize) % bytes.len();
        prop_assert!(Iblt::from_bytes(&bytes[..cut]).is_err());

        // Flip one bit strictly inside the cell bank (past the header), so the
        // table still parses but cannot compare equal.
        let header = uvarint_len(soa.key_bytes() as u64)
            + uvarint_len(soa.hash_count() as u64)
            + uvarint_len(soa.cells() as u64)
            + 8;
        let mut corrupted = bytes.clone();
        let pos = header + (flip as usize) % (bytes.len() - header);
        corrupted[pos] ^= 1 << (flip % 8) as u8;
        let parsed = Iblt::from_bytes(&corrupted).unwrap();
        prop_assert_ne!(parsed, soa);
    }
}

// ---------------------------------------------------------------------------
// Decode rescue vs ground truth
// ---------------------------------------------------------------------------

/// A reconciliation instance straddling the peeling threshold: a subtracted
/// table holding `d_pos + d_neg` difference keys over `num_shared` cancelled
/// ones, at `factor_pct`% cells per difference. Returns the table (built with
/// `cfg`), Bob's full key list and the sorted ground-truth difference.
fn rescue_instance(
    cfg: &IbltConfig,
    num_shared: usize,
    d_pos: usize,
    d_neg: usize,
    factor_pct: usize,
    seed: u64,
) -> (Iblt, Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut rng = Xoshiro256::new(seed ^ 0x7E5C);
    let mut next = || rng.next_u64() >> 1;
    let shared: Vec<u64> = (0..num_shared).map(|_| next()).collect();
    let alice_extra: Vec<u64> = (0..d_pos).map(|_| next()).collect();
    let bob_extra: Vec<u64> = (0..d_neg).map(|_| next()).collect();
    let cells = ((d_pos + d_neg) * factor_pct).div_ceil(100).max(6);
    let mut table = Iblt::with_cells(cells, cfg);
    for &x in shared.iter().chain(&alice_extra) {
        table.insert_u64(x);
    }
    let bob: Vec<u64> = shared.iter().chain(&bob_extra).copied().collect();
    for &x in &bob {
        table.delete_u64(x);
    }
    let mut pos = alice_extra;
    let mut neg = bob_extra;
    pos.sort_unstable();
    neg.sort_unstable();
    (table, bob, pos, neg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The decode-rescue pipeline, fed the decoder's own keys as candidates:
    /// whatever it recovers is the exact ground-truth difference — it never
    /// invents a key, never flips a sign — and it strictly dominates the pure
    /// peel (every instance the peel completes, the rescue completes too).
    #[test]
    fn rescue_recovers_ground_truth_or_fails_cleanly(
        num_shared in 20usize..300,
        d_pos in 0usize..10,
        d_neg in 0usize..24,
        factor_pct in 100usize..170,
        stash in 0usize..4,
        hash_sel in 0usize..2,
        seed in any::<u64>(),
    ) {
        let cfg = IbltConfig::for_u64_keys(seed ^ 0x3C5)
            .with_hash_count(3 + hash_sel)
            .with_stash_cells(stash);
        let (mut table, bob, want_pos, want_neg) =
            rescue_instance(&cfg, num_shared, d_pos, d_neg, factor_pct, seed);
        let (mut peel_table, _, _, _) = rescue_instance(
            &cfg.with_rescue(None), num_shared, d_pos, d_neg, factor_pct, seed);
        let peeled = peel_table.decode_in_place();

        let decoded = table.decode_in_place_with_candidates_u64(bob.iter().copied());
        // Partial recoveries are still sound: every reported key is a real
        // difference key with the right sign.
        let mut got_pos = decoded.positive_u64();
        let mut got_neg = decoded.negative_u64();
        got_pos.sort_unstable();
        got_neg.sort_unstable();
        prop_assert!(got_pos.iter().all(|x| want_pos.binary_search(x).is_ok()));
        prop_assert!(got_neg.iter().all(|x| want_neg.binary_search(x).is_ok()));
        if decoded.complete {
            prop_assert_eq!(got_pos, want_pos);
            prop_assert_eq!(got_neg, want_neg);
            prop_assert!(table.is_empty());
        }
        // Strict domination: rescue completes at least wherever the peel does.
        if peeled.complete {
            prop_assert!(decoded.complete);
        }
    }

    /// A corrupted table must never be decoded into wrong keys: flip one bit
    /// of the serialized cell bank and the decode — peel and rescue alike —
    /// either reports incomplete or recovers only genuine difference keys. It
    /// can never report a clean finish, because no subset of keys with valid
    /// check sums explains a single flipped bit.
    #[test]
    fn rescue_never_accepts_keys_from_corrupted_cells(
        num_shared in 20usize..200,
        d_pos in 0usize..8,
        d_neg in 1usize..16,
        stash in 0usize..4,
        seed in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let cfg = IbltConfig::for_u64_keys(seed ^ 0x3C6)
            .with_hash_count(3)
            .with_stash_cells(stash);
        let (table, bob, want_pos, want_neg) =
            rescue_instance(&cfg, num_shared, d_pos, d_neg, 140, seed);
        let bytes = table.to_bytes();
        let header = uvarint_len(table.key_bytes() as u64)
            + uvarint_len(table.hash_count() as u64)
            + uvarint_len(table.cells() as u64)
            + 8;
        let mut corrupted = bytes.clone();
        let pos = header + (flip as usize) % (bytes.len() - header);
        corrupted[pos] ^= 1 << (flip % 8) as u8;

        let mut reparsed = Iblt::from_bytes(&corrupted).unwrap();
        reparsed.adopt_layout(&cfg).unwrap();
        let decoded = reparsed.decode_in_place_with_candidates_u64(bob.iter().copied());
        prop_assert!(!decoded.complete, "a flipped bit can never drain to zero");
        let got_pos = decoded.positive_u64();
        let got_neg = decoded.negative_u64();
        prop_assert!(got_pos.iter().all(|x| want_pos.binary_search(x).is_ok()));
        prop_assert!(got_neg.iter().all(|x| want_neg.binary_search(x).is_ok()));
    }
}

// ---------------------------------------------------------------------------
// SIMD vs scalar kernel dispatch
// ---------------------------------------------------------------------------

/// Serializes the tests that flip the process-global kernel override, so the
/// "dispatched" phase of one case cannot observe another case's forced-scalar
/// phase.
static KERNEL_MODE_LOCK: Mutex<()> = Mutex::new(());

/// Restores auto dispatch even when a failing assertion unwinds mid-case.
struct ScalarModeGuard;

impl ScalarModeGuard {
    fn engage() -> Self {
        force_scalar_kernels(true);
        ScalarModeGuard
    }
}

impl Drop for ScalarModeGuard {
    fn drop(&mut self) {
        force_scalar_kernels(false);
    }
}

/// Two tables of identical geometry filled with disjoint-ish random workloads
/// (inserts and deletes), plus the config they share.
fn simd_pair(
    width_sel: usize,
    hash_sel: usize,
    num_keys: usize,
    cells: usize,
    seed: u64,
) -> (Iblt, Iblt) {
    let key_bytes = KEY_WIDTHS[width_sel % KEY_WIDTHS.len()];
    let hash_count = HASH_COUNTS[hash_sel % HASH_COUNTS.len()];
    let cfg = IbltConfig::for_key_bytes(key_bytes, seed).with_hash_count(hash_count);
    let mut alice = Iblt::with_cells(cells, &cfg);
    let mut bob = Iblt::with_cells(cells, &cfg);
    let mut rng = Xoshiro256::new(seed ^ 0x51D);
    for i in 0..num_keys {
        let key: Vec<u8> = (0..key_bytes).map(|_| rng.next_u64() as u8).collect();
        let table = if i % 2 == 0 { &mut alice } else { &mut bob };
        if i % 5 == 4 {
            table.delete(&key);
        } else {
            table.insert(&key);
        }
    }
    (alice, bob)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The runtime-dispatched bulk kernels (AVX2 where the CPU has it) and the
    /// forced scalar fallback produce bit-identical banks — same equality, same
    /// wire bytes — and identical peeling results, across key widths and hash
    /// counts, for subtract, add, and the full subtract→decode pipeline.
    #[test]
    fn dispatched_kernels_match_forced_scalar(
        width_sel in 0usize..4,
        hash_sel in 0usize..3,
        num_keys in 0usize..60,
        cells in 6usize..96,
        seed in any::<u64>(),
    ) {
        // A poisoned lock is fine: the guarded flag is a plain atomic with no
        // invariant, and swallowing the poison keeps proptest's shrink re-runs
        // of a genuine failure alive instead of cascading lock panics.
        let _serialize = KERNEL_MODE_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let (alice, bob) = simd_pair(width_sel, hash_sel, num_keys, cells, seed);

        // Dispatched path (whatever the CPU supports).
        let dispatched_sub = alice.subtract(&bob).expect("same geometry");
        let mut dispatched_add = alice.clone();
        dispatched_add.add_assign(&bob).expect("same geometry");
        let dispatched_decode = dispatched_sub.decode();

        // Forced scalar fallback.
        let (scalar_sub, scalar_add, scalar_decode) = {
            let _scalar = ScalarModeGuard::engage();
            let scalar_sub = alice.subtract(&bob).expect("same geometry");
            let mut scalar_add = alice.clone();
            scalar_add.add_assign(&bob).expect("same geometry");
            let scalar_decode = scalar_sub.decode();
            (scalar_sub, scalar_add, scalar_decode)
        };

        prop_assert_eq!(&dispatched_sub, &scalar_sub);
        prop_assert_eq!(dispatched_sub.to_bytes(), scalar_sub.to_bytes());
        prop_assert_eq!(&dispatched_add, &scalar_add);
        prop_assert_eq!(dispatched_add.to_bytes(), scalar_add.to_bytes());
        prop_assert_eq!(dispatched_decode, scalar_decode);
    }

    /// Chains of in-place bulk operations stay bit-identical across kernel
    /// paths (accumulating adds and subtracts over one running bank, the way
    /// the estimator's strata and the sharded mergers drive it).
    #[test]
    fn accumulated_bulk_operations_match_forced_scalar(
        width_sel in 0usize..4,
        hash_sel in 0usize..3,
        num_keys in 1usize..40,
        seed in any::<u64>(),
        operations in proptest::collection::vec(any::<bool>(), 1..8),
    ) {
        // A poisoned lock is fine: the guarded flag is a plain atomic with no
        // invariant, and swallowing the poison keeps proptest's shrink re-runs
        // of a genuine failure alive instead of cascading lock panics.
        let _serialize = KERNEL_MODE_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let (alice, bob) = simd_pair(width_sel, hash_sel, num_keys, 24, seed);

        let run = |ops: &[bool]| {
            let mut acc = alice.clone();
            for &add in ops {
                if add {
                    acc.add_assign(&bob).expect("same geometry");
                } else {
                    acc.subtract_assign(&bob).expect("same geometry");
                }
            }
            acc
        };
        let dispatched = run(&operations);
        let scalar = {
            let _scalar = ScalarModeGuard::engage();
            run(&operations)
        };
        prop_assert_eq!(&dispatched, &scalar);
        prop_assert_eq!(dispatched.to_bytes(), scalar.to_bytes());
    }
}
