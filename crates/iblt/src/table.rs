//! The IBLT cell bank, insert/delete/subtract operations and the peeling decoder.
//!
//! # Memory layout
//!
//! Cells are stored as a flat struct-of-arrays bank rather than a `Vec<Cell>`:
//! one contiguous `counts: Vec<i64>`, one contiguous `check_sums: Vec<u64>`, and a
//! single `key_sums: Vec<u8>` buffer holding every cell's key sum at stride
//! `key_bytes`. The bulk table combinators (subtract/add) run through the
//! fixed-width chunked kernels in [`crate::kernels`] (runtime-dispatched AVX2 on
//! x86_64, chunked scalar elsewhere); the per-key paths batch the `k` cell-index
//! hashes into one stack array using hash seeds pre-split at construction, and
//! XOR keys into the bank a 64-bit word at a time. The wire encoder/decoder
//! stream straight from/to the flat buffers. The serialized byte format is
//! identical to the previous per-cell layout (count | key sum | checksum per
//! cell, little-endian), so tables interoperate across versions.

use crate::kernels;
use crate::rescue::{self, DecodeBudget};
use recon_base::config;
use recon_base::hash::{hash64, hash_bytes, hash_bytes8};
use recon_base::rng::split_seed;
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;
use std::collections::VecDeque;

/// Configuration of an IBLT: key width, number of hash functions, sizing policy and
/// the public-coin seed from which the hash functions are derived.
///
/// Two parties can combine (subtract/decode) their IBLTs only if they used identical
/// configurations *and* the same number of cells; [`Iblt::subtract`] checks this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbltConfig {
    /// Width of every key in bytes. All keys inserted into a table must have exactly
    /// this length.
    pub key_bytes: usize,
    /// Number of hash functions `k` (the paper uses 3 or 4; default 4).
    pub hash_count: usize,
    /// Number of cells allocated per expected difference (the constant hidden in the
    /// paper's `O(d)`; default 2.2, which keeps the decode failure rate well below
    /// 1% for the difference sizes exercised in this repository).
    pub cells_per_diff: f64,
    /// Minimum number of cells regardless of the expected difference, so that very
    /// small tables still decode reliably.
    pub min_cells: usize,
    /// Public-coin seed; bucket hashes and the checksum hash are derived from it.
    pub seed: u64,
    /// Number of overflow (stash) cells appended after the partitioned region.
    /// Every key is additionally hashed into exactly one stash cell, which gives
    /// the peel (and the rescue solver) one extra equation per key — cheap
    /// insurance against the 2-core at tight sizing. `0` (the default) keeps
    /// the classic pure-partition layout.
    pub stash_cells: usize,
    /// Budget for the GF(2) decode-rescue pipeline ([`crate::rescue`]); `None`
    /// makes a stalled peel a hard failure, exactly as before the rescue path
    /// existed. The effective value is also gated by
    /// [`recon_base::config::peel_only_forced`].
    pub rescue: Option<DecodeBudget>,
    /// Use the retightened per-difference layout table (hash count and
    /// cells-per-difference chosen by expected difference) instead of the flat
    /// `hash_count`/`cells_per_diff` pair. Opt-in: the rescue pipeline is what
    /// makes the tighter sizing safe, so only rescue-aware callers enable it.
    pub tuned_layout: bool,
}

impl IbltConfig {
    /// A configuration for 8-byte (`u64`) keys with default sizing.
    pub fn for_u64_keys(seed: u64) -> Self {
        Self::for_key_bytes(8, seed)
    }

    /// A configuration for keys of `key_bytes` bytes with default sizing.
    pub fn for_key_bytes(key_bytes: usize, seed: u64) -> Self {
        Self {
            key_bytes,
            hash_count: 4,
            cells_per_diff: 2.2,
            min_cells: 24,
            seed,
            stash_cells: 0,
            rescue: Some(DecodeBudget::default()),
            tuned_layout: false,
        }
    }

    /// A configuration for 8-byte keys with the retightened, rescue-backed
    /// sizing: per-difference tuned layout, a small stash, and a lower cell
    /// floor. See [`IbltConfig::tuned_for_key_bytes`].
    pub fn tuned_for_u64_keys(seed: u64) -> Self {
        Self::tuned_for_key_bytes(8, seed)
    }

    /// A configuration with the retightened, rescue-backed sizing for keys of
    /// `key_bytes` bytes.
    ///
    /// With the decode-rescue pipeline finishing stalled peels, tables can run
    /// much closer to the peeling wall than the classic `2.2·d` sizing: the
    /// per-difference layout table picks the hash count and cell factor, a
    /// small stash gives every key one extra equation, and the cell floor
    /// drops from 24 to 16. Callers that decode with candidates (set
    /// reconciliation, SoS outer tables) get the full benefit; peel-only
    /// decoding of these tables falls back to amplification retries.
    pub fn tuned_for_key_bytes(key_bytes: usize, seed: u64) -> Self {
        let mut cfg = Self::for_key_bytes(key_bytes, seed);
        cfg.tuned_layout = true;
        cfg.min_cells = 16;
        cfg.stash_cells = 3;
        cfg
    }

    /// Override the cells-per-difference safety factor (ablation knob for Thm 2.1's
    /// constant `c`).
    pub fn with_cells_per_diff(mut self, factor: f64) -> Self {
        self.cells_per_diff = factor;
        self
    }

    /// Override the number of hash functions.
    pub fn with_hash_count(mut self, k: usize) -> Self {
        self.hash_count = k;
        self
    }

    /// Override the minimum cell count. Small minimums shrink nested/cascaded child
    /// tables (whose decode failures are retried at later levels) at the cost of a
    /// slightly higher per-table failure rate.
    pub fn with_min_cells(mut self, min_cells: usize) -> Self {
        self.min_cells = min_cells.max(self.hash_count);
        self
    }

    /// Override the seed (derive per-role seeds with [`recon_base::rng::split_seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the number of stash (overflow) cells appended to the table.
    pub fn with_stash_cells(mut self, stash_cells: usize) -> Self {
        self.stash_cells = stash_cells;
        self
    }

    /// Override (or disable, with `None`) the decode-rescue budget.
    pub fn with_rescue(mut self, rescue: Option<DecodeBudget>) -> Self {
        self.rescue = rescue;
        self
    }

    /// Enable or disable the retightened per-difference layout table.
    pub fn with_tuned_layout(mut self, tuned: bool) -> Self {
        self.tuned_layout = tuned;
        self
    }

    /// Number of cells allocated for an expected difference of `expected_diff` keys:
    /// `max(min_cells, ceil(cells_per_diff · expected_diff))`, rounded up to a
    /// multiple of `hash_count` so the table partitions evenly.
    pub fn cells_for(&self, expected_diff: usize) -> usize {
        let target = (self.cells_per_diff * expected_diff as f64).ceil() as usize;
        let m = target.max(self.min_cells).max(self.hash_count);
        m.div_ceil(self.hash_count) * self.hash_count
    }

    /// The `(hash_count, partitioned cells)` layout for an expected difference
    /// of `expected_diff` keys.
    ///
    /// With [`IbltConfig::tuned_layout`] off this is simply
    /// `(hash_count, cells_for(expected_diff))`. With it on, the hash count
    /// and cell factor come from `TUNED_LAYOUT`, a per-difference table
    /// calibrated (Monte Carlo, see `BENCH.md`) so the rescue-backed decode
    /// stays reliable while spending far fewer cells than the classic flat
    /// `2.2·d`. Stash cells are not included — they sit on top of the
    /// partitioned region.
    pub fn layout_for(&self, expected_diff: usize) -> (usize, usize) {
        if !self.tuned_layout {
            return (self.hash_count, self.cells_for(expected_diff));
        }
        let &(_, k, cells_per_diff) = TUNED_LAYOUT
            .iter()
            .find(|&&(max_diff, _, _)| expected_diff <= max_diff)
            .unwrap_or(TUNED_LAYOUT.last().expect("tuned layout table is non-empty"));
        let target = (cells_per_diff * expected_diff as f64).ceil() as usize;
        let m = target.max(self.min_cells).max(k);
        (k, m.div_ceil(k) * k)
    }

    /// Total cells (partitioned region + stash) a table sized for
    /// `expected_diff` will allocate — the value to feed into
    /// [`IbltConfig::serialized_len`] for cost accounting.
    pub fn total_cells_for(&self, expected_diff: usize) -> usize {
        let (_, base) = self.layout_for(expected_diff);
        base + self.stash_cells
    }

    /// Serialized size in bytes of a table with `cells` cells under this
    /// configuration (count varint is bounded by 9 bytes, but small tables use 1–2;
    /// this returns the exact size of an empty table, which equals the size of any
    /// table because counts are encoded as fixed-width `i64`).
    pub fn serialized_len(&self, cells: usize) -> usize {
        // header: key_bytes, hash_count, cell count (varints) + seed (8 bytes)
        let header = uvarint_len(self.key_bytes as u64)
            + uvarint_len(self.hash_count as u64)
            + uvarint_len(cells as u64)
            + 8;
        header + cells * (8 + self.key_bytes + 8)
    }
}

fn uvarint_len(v: u64) -> usize {
    recon_base::wire::uvarint_len(v)
}

/// The retightened per-difference layout: `(max_diff, hash_count,
/// cells_per_diff)` rows, first match wins. Calibrated by Monte Carlo against
/// the rescue-backed decode with candidates (400 trials per point at shared
/// set sizes 1 000 and 20 000; see `BENCH.md` for the sweep): `k = 3` has the
/// lowest peeling threshold (`c* ≈ 1.22`) and dominated `k = 4` at every
/// factor up to 1.5×, and the rescue solver covers the near-threshold
/// variance that historically forced `k = 4` at `2.2·d`. Small differences
/// stay a little fatter because the `min_cells` floor — not the factor — is
/// what carries them.
const TUNED_LAYOUT: &[(usize, usize, f64)] = &[(16, 3, 2.0), (64, 3, 1.6), (usize::MAX, 3, 1.5)];

impl Default for IbltConfig {
    fn default() -> Self {
        Self::for_u64_keys(0)
    }
}

/// The result of decoding (peeling) an IBLT.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodeResult {
    /// Keys that were inserted more often than deleted (for a subtracted pair of
    /// tables: keys only in Alice's set, `S_A \ S_B`).
    pub positive: Vec<Vec<u8>>,
    /// Keys that were deleted more often than inserted (`S_B \ S_A`).
    pub negative: Vec<Vec<u8>>,
    /// `true` if the table was fully emptied: every key was extracted. `false`
    /// indicates a peeling failure (non-empty 2-core), which Theorem 2.1 bounds by
    /// `O(1/poly(m))`.
    pub complete: bool,
}

impl DecodeResult {
    /// Positive keys reinterpreted as `u64` (first 8 bytes, little-endian).
    pub fn positive_u64(&self) -> Vec<u64> {
        self.positive.iter().map(|k| key_to_u64(k)).collect()
    }

    /// Negative keys reinterpreted as `u64` (first 8 bytes, little-endian).
    pub fn negative_u64(&self) -> Vec<u64> {
        self.negative.iter().map(|k| key_to_u64(k)).collect()
    }

    /// Total number of keys recovered.
    pub fn recovered(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Convert into a `Result`, mapping an incomplete peel to
    /// [`ReconError::PeelingFailure`].
    pub fn into_result(self) -> Result<Self, ReconError> {
        if self.complete {
            Ok(self)
        } else {
            Err(ReconError::PeelingFailure { remaining_cells: 0 })
        }
    }
}

/// Call `f` with the zero-padded little-endian `key_bytes`-wide key for `x`,
/// staying on the stack for every practical key width (heap only past 64 bytes).
#[inline]
fn with_u64_key<R>(x: u64, key_bytes: usize, f: impl FnOnce(&[u8]) -> R) -> R {
    assert!(key_bytes >= 8, "u64 keys require key_bytes >= 8");
    if key_bytes <= 64 {
        let mut buf = [0u8; 64];
        buf[..8].copy_from_slice(&x.to_le_bytes());
        f(&buf[..key_bytes])
    } else {
        let mut buf = vec![0u8; key_bytes];
        buf[..8].copy_from_slice(&x.to_le_bytes());
        f(&buf)
    }
}

fn key_to_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_le_bytes(buf)
}

/// Hash seeds pre-split from the table seed at construction, so the per-key hot
/// paths never re-derive them: the byte-hash seed for the partition base, the
/// checksum seed, and one index seed per hash function.
///
/// Deterministic in `(seed, hash_count)`, so the derived `PartialEq` on [`Iblt`]
/// stays consistent: tables with equal geometry and seed have equal plans.
#[derive(Debug, Clone, PartialEq)]
struct HashPlan {
    base_seed: u64,
    check_seed: u64,
    stash_seed: u64,
    index_seeds: Vec<u64>,
}

impl HashPlan {
    fn new(seed: u64, hash_count: usize) -> Self {
        Self {
            base_seed: split_seed(seed, 0xB0CC),
            check_seed: split_seed(seed, 0xC4EC),
            stash_seed: split_seed(seed, 0x57A5),
            index_seeds: (0..hash_count).map(|j| split_seed(seed, j as u64 + 1)).collect(),
        }
    }
}

/// Hash counts up to this bound batch their cell indices into a stack array;
/// larger (unusual) counts fall back to one heap buffer per operation.
const MAX_HASHES_ON_STACK: usize = 16;

/// Hash a key with [`hash_bytes`], taking the loop-free [`hash_bytes8`] shortcut
/// for the ubiquitous 8-byte key width (bit-identical by construction).
#[inline]
fn hash_key(key: &[u8], seed: u64) -> u64 {
    match <&[u8; 8]>::try_from(key) {
        Ok(words) => hash_bytes8(u64::from_le_bytes(*words), seed),
        Err(_) => hash_bytes(key, seed),
    }
}

/// XOR `src` into `dst` one 64-bit word at a time, with a byte tail — the
/// per-key analogue of the bulk bank kernels (key widths are small, so the word
/// loop beats vector dispatch overhead).
#[inline]
fn xor_key(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let (dc, dr) = dst.as_chunks_mut::<8>();
    let (sc, sr) = src.as_chunks::<8>();
    for (d, s) in dc.iter_mut().zip(sc) {
        *d = (u64::from_le_bytes(*d) ^ u64::from_le_bytes(*s)).to_le_bytes();
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d ^= s;
    }
}

/// An Invertible Bloom Lookup Table over fixed-width byte keys.
///
/// See the crate-level documentation for the data-structure description and the
/// module documentation for the flat struct-of-arrays cell bank. The table is cheap
/// to clone (three flat `Vec`s) and serializes through [`recon_base::wire::Encode`],
/// which is how its communication cost is measured.
#[derive(Debug, Clone)]
pub struct Iblt {
    key_bytes: usize,
    hash_count: usize,
    seed: u64,
    /// Signed occurrence count per cell.
    counts: Vec<i64>,
    /// XOR of all keys per cell, `counts.len() * key_bytes` bytes at stride
    /// `key_bytes`.
    key_sums: Vec<u8>,
    /// XOR of the key checksums per cell.
    check_sums: Vec<u64>,
    /// Pre-split hash seeds (derived from `seed` and `hash_count`).
    plan: HashPlan,
    /// Stash (overflow) cells at the tail of the bank; `0` for the classic
    /// pure-partition layout. Affects hashing, so [`Iblt::subtract`] requires
    /// both sides to agree.
    stash_cells: usize,
    /// Decode-rescue budget ([`crate::rescue`]); decode-side metadata, not
    /// part of the wire format.
    rescue: Option<DecodeBudget>,
}

/// Equality compares the bank and its hashing geometry (key width, hash
/// count, seed, cells). The stash count and rescue budget are *decode-side
/// metadata*: a table parsed off the wire compares equal to the local table
/// that produced it even before [`Iblt::adopt_layout`] restores them.
impl PartialEq for Iblt {
    fn eq(&self, other: &Self) -> bool {
        self.key_bytes == other.key_bytes
            && self.hash_count == other.hash_count
            && self.seed == other.seed
            && self.counts == other.counts
            && self.key_sums == other.key_sums
            && self.check_sums == other.check_sums
    }
}

impl Iblt {
    /// Create an empty table whose partitioned region has `cells` cells (rounded
    /// up to a multiple of the hash count), plus the configuration's stash cells
    /// on top.
    pub fn with_cells(cells: usize, cfg: &IbltConfig) -> Self {
        Self::build(cfg, cfg.hash_count, cells)
    }

    /// Create an empty table sized for an expected difference of `expected_diff`
    /// keys, using the configuration's sizing policy ([`IbltConfig::layout_for`],
    /// which is [`IbltConfig::cells_for`] unless the tuned layout is enabled).
    pub fn with_expected_diff(expected_diff: usize, cfg: &IbltConfig) -> Self {
        let (hash_count, base_cells) = cfg.layout_for(expected_diff);
        Self::build(cfg, hash_count, base_cells)
    }

    fn build(cfg: &IbltConfig, hash_count: usize, base_cells: usize) -> Self {
        assert!(hash_count >= 1, "need at least one hash function");
        assert!(cfg.key_bytes >= 1, "keys must be at least one byte wide");
        let base = base_cells.max(hash_count).div_ceil(hash_count) * hash_count;
        let m = base + cfg.stash_cells;
        Self {
            key_bytes: cfg.key_bytes,
            hash_count,
            seed: cfg.seed,
            counts: vec![0; m],
            key_sums: vec![0; m * cfg.key_bytes],
            check_sums: vec![0; m],
            plan: HashPlan::new(cfg.seed, hash_count),
            stash_cells: cfg.stash_cells,
            rescue: cfg.rescue,
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.counts.len()
    }

    /// Width of the keys stored in this table, in bytes.
    pub fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> usize {
        self.hash_count
    }

    /// The public-coin seed this table was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of stash (overflow) cells at the tail of the bank.
    pub fn stash_cells(&self) -> usize {
        self.stash_cells
    }

    /// The decode-rescue budget this table will use (before the
    /// [`recon_base::config::peel_only_forced`] gate).
    pub fn rescue_budget(&self) -> Option<DecodeBudget> {
        self.rescue
    }

    /// Cell indices a key touches: `hash_count` partitioned cells plus one
    /// stash cell when a stash is configured.
    #[inline]
    fn index_count(&self) -> usize {
        self.hash_count + usize::from(self.stash_cells > 0)
    }

    /// Re-bless a table parsed off the wire with the decode-side layout
    /// metadata the wire format does not carry: the stash split and the
    /// rescue budget.
    ///
    /// The wire header is authoritative for the hash count (the tuned layout
    /// varies it per difference size), so only the key width and seed must
    /// match `cfg`; the stash must also fit (the partitioned remainder stays a
    /// non-empty multiple of the hash count).
    pub fn adopt_layout(&mut self, cfg: &IbltConfig) -> Result<(), ReconError> {
        let base = self.counts.len().checked_sub(cfg.stash_cells);
        let base_ok = matches!(base, Some(b) if b >= self.hash_count && b % self.hash_count == 0);
        if cfg.key_bytes != self.key_bytes || cfg.seed != self.seed || !base_ok {
            return Err(ReconError::InvalidInput(
                "IBLT layout does not match the configuration being adopted".to_string(),
            ));
        }
        self.stash_cells = cfg.stash_cells;
        self.rescue = cfg.rescue;
        Ok(())
    }

    /// `true` if every cell is zero (the represented multiset difference is empty).
    pub fn is_empty(&self) -> bool {
        fn all_zero_bytes(bytes: &[u8]) -> bool {
            let (chunks, rest) = bytes.as_chunks::<8>();
            chunks.iter().all(|c| u64::from_le_bytes(*c) == 0) && rest.iter().all(|&b| b == 0)
        }
        self.counts.iter().all(|&c| c == 0)
            && self.check_sums.iter().all(|&c| c == 0)
            && all_zero_bytes(&self.key_sums)
    }

    /// Reset every cell to zero, keeping geometry and seed. Lets hot loops reuse one
    /// table (and its allocations) across many encodings.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.key_sums.fill(0);
        self.check_sums.fill(0);
    }

    /// The key-sum slice of cell `idx`.
    #[inline]
    fn key_sum(&self, idx: usize) -> &[u8] {
        &self.key_sums[idx * self.key_bytes..(idx + 1) * self.key_bytes]
    }

    fn checksum(&self, key: &[u8]) -> u64 {
        hash_key(key, self.plan.check_seed)
    }

    /// Compute the cell indices of the key with base hash `base` into `out`
    /// (one batch, no per-index seed derivation): `hash_count` partitioned
    /// indices over the base region, plus one stash index past it when a stash
    /// is configured. `out.len()` must equal [`Iblt::index_count`].
    #[inline]
    fn fill_indices(&self, base: u64, out: &mut [usize]) {
        let base_cells = self.counts.len() - self.stash_cells;
        let part = base_cells / self.hash_count;
        for (j, (slot, &index_seed)) in out.iter_mut().zip(&self.plan.index_seeds).enumerate() {
            let h = hash64(base, index_seed);
            *slot = j * part + (h % part as u64) as usize;
        }
        if self.stash_cells > 0 {
            let h = hash64(base, self.plan.stash_seed);
            out[self.hash_count] = base_cells + (h % self.stash_cells as u64) as usize;
        }
    }

    /// Apply `delta` occurrences of `key` (checksum already computed) to the
    /// bank: one batched index computation, then lane-at-a-time cell updates.
    #[inline]
    fn apply_prehashed(&mut self, key: &[u8], checksum: u64, delta: i64) {
        let base = hash_key(key, self.plan.base_seed);
        let index_count = self.index_count();
        let mut stack = [0usize; MAX_HASHES_ON_STACK];
        let mut heap: Vec<usize>;
        let indices: &mut [usize] = if index_count <= MAX_HASHES_ON_STACK {
            &mut stack[..index_count]
        } else {
            heap = vec![0; index_count];
            &mut heap
        };
        self.fill_indices(base, indices);
        let kb = self.key_bytes;
        for &idx in indices.iter() {
            self.counts[idx] = self.counts[idx].wrapping_add(delta);
            xor_key(&mut self.key_sums[idx * kb..(idx + 1) * kb], key);
            self.check_sums[idx] ^= checksum;
        }
    }

    fn apply(&mut self, key: &[u8], delta: i64) {
        assert_eq!(
            key.len(),
            self.key_bytes,
            "key width {} does not match table key width {}",
            key.len(),
            self.key_bytes
        );
        let checksum = self.checksum(key);
        self.apply_prehashed(key, checksum, delta);
    }

    /// Insert a key (a "positive" occurrence).
    pub fn insert(&mut self, key: &[u8]) {
        self.apply(key, 1);
    }

    /// Delete a key (a "negative" occurrence; counts may go negative, which is how a
    /// single table represents both sides of a set difference).
    pub fn delete(&mut self, key: &[u8]) {
        self.apply(key, -1);
    }

    /// Insert a `u64` key (zero-padded to the table's key width, without touching
    /// the heap).
    pub fn insert_u64(&mut self, x: u64) {
        with_u64_key(x, self.key_bytes, |key| self.apply(key, 1));
    }

    /// Delete a `u64` key.
    pub fn delete_u64(&mut self, x: u64) {
        with_u64_key(x, self.key_bytes, |key| self.apply(key, -1));
    }

    fn check_geometry(&self, other: &Iblt) -> Result<(), ReconError> {
        if self.key_bytes != other.key_bytes
            || self.hash_count != other.hash_count
            || self.seed != other.seed
            || self.counts.len() != other.counts.len()
            || self.stash_cells != other.stash_cells
        {
            return Err(ReconError::InvalidInput(
                "cannot combine IBLTs with different geometry or seed".to_string(),
            ));
        }
        Ok(())
    }

    /// Cell-wise subtraction `self − other`: the result represents the symmetric
    /// difference of the two encoded sets (Alice's elements as positive keys, Bob's
    /// as negative). Fails if the two tables do not share geometry and seed.
    pub fn subtract(&self, other: &Iblt) -> Result<Iblt, ReconError> {
        let mut out = self.clone();
        out.subtract_assign(other)?;
        Ok(out)
    }

    /// In-place cell-wise subtraction `self −= other` over the flat cell bank.
    pub fn subtract_assign(&mut self, other: &Iblt) -> Result<(), ReconError> {
        self.check_geometry(other)?;
        kernels::sub_i64(&mut self.counts, &other.counts);
        self.xor_sums(other);
        Ok(())
    }

    /// In-place cell-wise addition `self += other` (counts add, key sums and
    /// checksums XOR). Adding is how signed sketches merge: a table whose deletions
    /// encode Bob's side added to a table encoding Alice's side yields the same
    /// difference table as [`Iblt::subtract`] on two positive encodings.
    pub fn add_assign(&mut self, other: &Iblt) -> Result<(), ReconError> {
        self.check_geometry(other)?;
        kernels::add_i64(&mut self.counts, &other.counts);
        self.xor_sums(other);
        Ok(())
    }

    /// XOR the key-sum and checksum banks of `other` into `self` — one chunked
    /// kernel pass over each contiguous buffer (geometry must already be
    /// verified).
    fn xor_sums(&mut self, other: &Iblt) {
        kernels::xor_bytes(&mut self.key_sums, &other.key_sums);
        kernels::xor_u64(&mut self.check_sums, &other.check_sums);
    }

    /// `true` if the cell currently holds exactly one key (count ±1 and the checksum
    /// of its key sum matches its checksum sum).
    fn is_pure(&self, idx: usize) -> bool {
        let count = self.counts[idx];
        (count == 1 || count == -1) && self.checksum(self.key_sum(idx)) == self.check_sums[idx]
    }

    /// Decode (peel) the table, returning the recovered positive and negative keys.
    ///
    /// This peels a clone of the cell bank; the table itself is left untouched so
    /// the caller can retry with different strategies or report diagnostics. Hot
    /// paths that own (or may mutate) their table should prefer
    /// [`Iblt::into_decode`] / [`Iblt::decode_in_place`], which skip the copy.
    pub fn decode(&self) -> DecodeResult {
        self.clone().into_decode()
    }

    /// Decode (peel) the table, consuming it.
    pub fn into_decode(mut self) -> DecodeResult {
        self.decode_in_place()
    }

    /// Decode the table in place, without copying the cell bank: peel first,
    /// and when the peel stalls on a non-empty 2-core, hand the residual to
    /// the GF(2) rescue solver ([`crate::rescue`]) before reporting failure.
    ///
    /// On a complete decode the table is left empty; on a failure it holds
    /// exactly the residual neither the peel nor the rescue could clear, so
    /// [`Iblt::nonempty_cells`] afterwards reports the genuinely undecodable
    /// remainder (a sharper diagnostic than the pre-peel cell count). Without
    /// candidates the rescue can only use keys it discovers by Gaussian
    /// elimination on the residual itself; decoders that know their own side
    /// of the difference should prefer
    /// [`Iblt::decode_in_place_with_candidates`].
    pub fn decode_in_place(&mut self) -> DecodeResult {
        let mut result = DecodeResult::default();
        self.peel_in_place(&mut result);
        if let Some(budget) = self.rescue_in_effect() {
            rescue::rescue_in_place(self, &mut result, &[], budget);
        }
        result.complete = self.is_empty();
        result
    }

    /// Decode in place like [`Iblt::decode_in_place`], but give the rescue
    /// solver the keys the decoder itself contributed (its own set, which is
    /// where every negative key must come from). The iterator is only
    /// consumed — and only on the failure path — when the peel stalls, so
    /// passing a large set is free on the happy path. Keys of the wrong width
    /// are ignored.
    pub fn decode_in_place_with_candidates<I, K>(&mut self, negative_candidates: I) -> DecodeResult
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut result = DecodeResult::default();
        self.peel_in_place(&mut result);
        if !self.is_empty() {
            if let Some(budget) = self.rescue_in_effect() {
                let owned: Vec<K> = negative_candidates.into_iter().collect();
                let refs: Vec<&[u8]> = owned
                    .iter()
                    .map(|k| k.as_ref())
                    .filter(|k| k.len() == self.key_bytes)
                    .collect();
                rescue::rescue_in_place(self, &mut result, &refs, budget);
            }
        }
        result.complete = self.is_empty();
        result
    }

    /// [`Iblt::decode_in_place_with_candidates`] for `u64` candidate keys
    /// (zero-padded to the table's key width, materialized only when the peel
    /// actually stalls).
    pub fn decode_in_place_with_candidates_u64<I>(&mut self, negative_candidates: I) -> DecodeResult
    where
        I: IntoIterator<Item = u64>,
    {
        let mut result = DecodeResult::default();
        self.peel_in_place(&mut result);
        if !self.is_empty() {
            if let Some(budget) = self.rescue_in_effect() {
                let kb = self.key_bytes;
                let keys: Vec<Vec<u8>> = negative_candidates
                    .into_iter()
                    .map(|x| {
                        let mut key = vec![0u8; kb];
                        key[..8].copy_from_slice(&x.to_le_bytes());
                        key
                    })
                    .collect();
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                rescue::rescue_in_place(self, &mut result, &refs, budget);
            }
        }
        result.complete = self.is_empty();
        result
    }

    /// The rescue budget actually in effect for this decode: the table's
    /// configured budget, unless peel-only decoding is forced process-wide.
    fn rescue_in_effect(&self) -> Option<DecodeBudget> {
        if self.is_empty() || config::peel_only_forced() {
            None
        } else {
            self.rescue
        }
    }

    /// Run the peeling loop to exhaustion, appending recovered keys to
    /// `result` (without setting `result.complete`). Public within the crate
    /// so the rescue solver can alternate algebraic removals with re-peels.
    pub(crate) fn peel_in_place(&mut self, result: &mut DecodeResult) {
        let mut queue: VecDeque<usize> = VecDeque::with_capacity(self.counts.len() / 2);
        for i in 0..self.counts.len() {
            if self.is_pure(i) {
                queue.push_back(i);
            }
        }
        let index_count = self.index_count();
        let mut stack = [0usize; MAX_HASHES_ON_STACK];
        let mut heap =
            vec![0usize; if index_count > MAX_HASHES_ON_STACK { index_count } else { 0 }];

        while let Some(idx) = queue.pop_front() {
            if !self.is_pure(idx) {
                continue;
            }
            let count = self.counts[idx];
            let key = self.key_sum(idx).to_vec();
            // A pure cell's checksum sum equals its key's checksum, so the hash
            // need not be recomputed to remove the key.
            let checksum = self.check_sums[idx];
            // Remove the key from the table: if it was a positive key, delete it; if
            // negative, add it back (as described in Section 2 of the paper). The
            // partitioned cells of a key (and its stash cell, which lives past the
            // partitioned region) are distinct, so each becomes final the moment it
            // is updated and can be tested for purity right away.
            let delta = if count == 1 { -1 } else { 1 };
            let kb = self.key_bytes;
            let base = hash_key(&key, self.plan.base_seed);
            let indices: &mut [usize] = if index_count <= MAX_HASHES_ON_STACK {
                &mut stack[..index_count]
            } else {
                &mut heap
            };
            self.fill_indices(base, indices);
            for &touched in indices.iter() {
                self.counts[touched] = self.counts[touched].wrapping_add(delta);
                xor_key(&mut self.key_sums[touched * kb..(touched + 1) * kb], &key);
                self.check_sums[touched] ^= checksum;
                if self.is_pure(touched) {
                    queue.push_back(touched);
                }
            }
            if count == 1 {
                result.positive.push(key);
            } else {
                result.negative.push(key);
            }
        }
    }

    /// Number of cells that are currently non-empty (diagnostic for peeling
    /// failures).
    pub fn nonempty_cells(&self) -> usize {
        self.nonempty_cell_indices().len()
    }

    /// Indices of every currently non-empty cell (the rescue solver's residual
    /// system).
    pub(crate) fn nonempty_cell_indices(&self) -> Vec<usize> {
        (0..self.counts.len()).filter(|&i| !self.cell_is_empty(i)).collect()
    }

    /// `true` if cell `idx` holds nothing (all three planes zero).
    #[inline]
    pub(crate) fn cell_is_empty(&self, idx: usize) -> bool {
        self.counts[idx] == 0
            && self.check_sums[idx] == 0
            && self.key_sum(idx).iter().all(|&b| b == 0)
    }

    /// The signed count of cell `idx`.
    #[inline]
    pub(crate) fn cell_count(&self, idx: usize) -> i64 {
        self.counts[idx]
    }

    /// The key-sum plane of cell `idx`.
    #[inline]
    pub(crate) fn cell_key_sum(&self, idx: usize) -> &[u8] {
        self.key_sum(idx)
    }

    /// The checksum plane of cell `idx`.
    #[inline]
    pub(crate) fn cell_check_sum(&self, idx: usize) -> u64 {
        self.check_sums[idx]
    }

    /// The checksum of `key` under this table's checksum hash.
    pub(crate) fn key_checksum(&self, key: &[u8]) -> u64 {
        self.checksum(key)
    }

    /// The cell indices `key` hashes to (partitioned cells plus the stash cell
    /// when configured).
    pub(crate) fn key_cells(&self, key: &[u8]) -> Vec<usize> {
        let base = hash_key(key, self.plan.base_seed);
        let mut indices = vec![0usize; self.index_count()];
        self.fill_indices(base, &mut indices);
        indices
    }

    /// Remove `sign` occurrences of a rescued `key` (checksum already known)
    /// from every cell it hashes to.
    pub(crate) fn remove_rescued(&mut self, key: &[u8], checksum: u64, sign: i64) {
        self.apply_prehashed(key, checksum, -sign);
    }

    /// The exact serialized size of this table in bytes.
    pub fn serialized_len(&self) -> usize {
        Encode::encoded_len(self)
    }

    /// Serialize the cell bank as three contiguous planes (counts, key sums,
    /// checksums) after a small header — the snapshot format used by durable
    /// stores.
    ///
    /// Unlike the wire [`Encode`] (which interleaves count | key sum | checksum
    /// per cell for streaming decode), this dumps each flat SoA buffer in one
    /// pass, so a snapshot loads back into the bank with three bulk copies and
    /// no per-cell parsing.
    pub fn encode_bank(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.key_bytes as u64);
        write_uvarint(buf, self.hash_count as u64);
        write_uvarint(buf, self.counts.len() as u64);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.reserve(self.counts.len() * (16 + self.key_bytes));
        for &c in &self.counts {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        buf.extend_from_slice(&self.key_sums);
        for &c in &self.check_sums {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// The exact size of [`Iblt::encode_bank`]'s output in bytes (equal to the
    /// wire size: same header, same cell payload, different ordering).
    pub fn bank_len(&self) -> usize {
        Encode::encoded_len(self)
    }

    /// Load a cell bank serialized with [`Iblt::encode_bank`].
    pub fn decode_bank(buf: &mut &[u8]) -> Result<Self, WireError> {
        let key_bytes = read_uvarint(buf)? as usize;
        let hash_count = read_uvarint(buf)? as usize;
        let cell_count = read_uvarint(buf)? as usize;
        if key_bytes == 0 || hash_count == 0 {
            return Err(WireError::Invalid("IBLT bank header"));
        }
        let seed = u64::decode(buf)?;
        let need = key_bytes
            .checked_add(16)
            .and_then(|per_cell| cell_count.checked_mul(per_cell))
            .ok_or(WireError::Invalid("IBLT bank header"))?;
        if buf.len() < need {
            return Err(WireError::UnexpectedEnd);
        }
        let (count_plane, rest) = buf.split_at(cell_count * 8);
        let (key_plane, rest) = rest.split_at(cell_count * key_bytes);
        let (check_plane, rest) = rest.split_at(cell_count * 8);
        *buf = rest;
        let counts = count_plane
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        let check_sums = check_plane
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        let plan = HashPlan::new(seed, hash_count);
        // The snapshot format does not carry decode-side metadata; callers
        // with a stash or a custom budget re-bless via `adopt_layout`.
        Ok(Iblt {
            key_bytes,
            hash_count,
            seed,
            counts,
            key_sums: key_plane.to_vec(),
            check_sums,
            plan,
            stash_cells: 0,
            rescue: Some(DecodeBudget::default()),
        })
    }
}

impl Encode for Iblt {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.key_bytes as u64);
        write_uvarint(buf, self.hash_count as u64);
        write_uvarint(buf, self.counts.len() as u64);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.reserve(self.counts.len() * (16 + self.key_bytes));
        for idx in 0..self.counts.len() {
            buf.extend_from_slice(&self.counts[idx].to_le_bytes());
            buf.extend_from_slice(self.key_sum(idx));
            buf.extend_from_slice(&self.check_sums[idx].to_le_bytes());
        }
    }

    fn encoded_len(&self) -> usize {
        uvarint_len(self.key_bytes as u64)
            + uvarint_len(self.hash_count as u64)
            + uvarint_len(self.counts.len() as u64)
            + 8
            + self.counts.len() * (8 + self.key_bytes + 8)
    }
}

impl Decode for Iblt {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let key_bytes = read_uvarint(buf)? as usize;
        let hash_count = read_uvarint(buf)? as usize;
        let cell_count = read_uvarint(buf)? as usize;
        if key_bytes == 0 || hash_count == 0 {
            return Err(WireError::Invalid("IBLT header"));
        }
        let seed = u64::decode(buf)?;
        // Exact remaining-length check up front: every cell needs 16 + key_bytes
        // bytes, so corrupt headers cannot trigger absurd allocations below.
        let need = key_bytes
            .checked_add(16)
            .and_then(|per_cell| cell_count.checked_mul(per_cell))
            .ok_or(WireError::Invalid("IBLT header"))?;
        if buf.len() < need {
            return Err(WireError::UnexpectedEnd);
        }
        let mut counts = Vec::with_capacity(cell_count);
        let mut key_sums = vec![0u8; cell_count * key_bytes];
        let mut check_sums = Vec::with_capacity(cell_count);
        for idx in 0..cell_count {
            counts.push(i64::decode(buf)?);
            let (key_sum, rest) = buf.split_at(key_bytes);
            key_sums[idx * key_bytes..(idx + 1) * key_bytes].copy_from_slice(key_sum);
            *buf = rest;
            check_sums.push(u64::decode(buf)?);
        }
        let plan = HashPlan::new(seed, hash_count);
        // The wire format is unchanged (byte-identical to every prior version)
        // and so carries no decode-side metadata: parsed tables start with no
        // stash and the default rescue budget, and protocol layers that use a
        // stash re-bless the table with `adopt_layout` before decoding.
        Ok(Iblt {
            key_bytes,
            hash_count,
            seed,
            counts,
            key_sums,
            check_sums,
            plan,
            stash_cells: 0,
            rescue: Some(DecodeBudget::default()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;
    use std::collections::HashSet;

    fn cfg() -> IbltConfig {
        IbltConfig::for_u64_keys(0xFEED)
    }

    #[test]
    fn cells_for_respects_minimum_and_rounding() {
        let c = cfg();
        assert_eq!(c.cells_for(0), 24);
        assert_eq!(c.cells_for(1) % c.hash_count, 0);
        assert!(c.cells_for(100) >= 220);
    }

    #[test]
    fn insert_then_delete_leaves_table_empty() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(42);
        assert!(!t.is_empty());
        t.delete_u64(42);
        assert!(t.is_empty());
    }

    #[test]
    fn single_key_decodes() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(7);
        let d = t.decode();
        assert!(d.complete);
        assert_eq!(d.positive_u64(), vec![7]);
        assert!(d.negative.is_empty());
    }

    #[test]
    fn negative_key_decodes() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.delete_u64(9);
        let d = t.decode();
        assert!(d.complete);
        assert_eq!(d.negative_u64(), vec![9]);
        assert!(d.positive.is_empty());
    }

    #[test]
    fn decode_does_not_mutate_table() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(1);
        let before = t.clone();
        let _ = t.decode();
        assert_eq!(t, before);
    }

    #[test]
    fn decode_in_place_drains_the_table() {
        let mut t = Iblt::with_expected_diff(8, &cfg());
        for x in 0..6u64 {
            t.insert_u64(x);
        }
        let reference = t.decode();
        let in_place = t.decode_in_place();
        assert_eq!(in_place, reference);
        assert!(in_place.complete);
        assert!(t.is_empty(), "a complete in-place peel empties the table");
        assert_eq!(t.nonempty_cells(), 0);
    }

    #[test]
    fn clear_resets_all_cells() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(3);
        t.delete_u64(1000);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t, Iblt::with_expected_diff(4, &cfg()));
    }

    #[test]
    fn add_assign_matches_subtract_of_negation() {
        let config = cfg();
        let mut alice = Iblt::with_expected_diff(8, &config);
        let mut bob_negated = Iblt::with_expected_diff(8, &config);
        for x in 0..50u64 {
            alice.insert_u64(x);
        }
        for x in 40..90u64 {
            bob_negated.delete_u64(x);
        }
        // alice + (−bob) must equal the subtract-based difference table.
        let mut bob = Iblt::with_expected_diff(8, &config);
        for x in 40..90u64 {
            bob.insert_u64(x);
        }
        let via_subtract = alice.subtract(&bob).unwrap();
        let mut via_add = alice.clone();
        via_add.add_assign(&bob_negated).unwrap();
        assert_eq!(via_add, via_subtract);

        let mismatched = Iblt::with_cells(alice.cells() + 4, &config);
        assert!(via_add.add_assign(&mismatched).is_err());
    }

    #[test]
    fn subtract_recovers_symmetric_difference() {
        let config = cfg();
        let mut alice = Iblt::with_expected_diff(16, &config);
        let mut bob = Iblt::with_expected_diff(16, &config);
        for x in 0..1000u64 {
            alice.insert_u64(x);
        }
        for x in 5..1005u64 {
            bob.insert_u64(x);
        }
        let diff = alice.subtract(&bob).unwrap();
        let d = diff.decode();
        assert!(d.complete);
        let pos: HashSet<u64> = d.positive_u64().into_iter().collect();
        let neg: HashSet<u64> = d.negative_u64().into_iter().collect();
        assert_eq!(pos, (0..5).collect());
        assert_eq!(neg, (1000..1005).collect());
    }

    #[test]
    fn subtract_requires_matching_geometry() {
        let a = Iblt::with_cells(24, &cfg());
        let b = Iblt::with_cells(36, &cfg());
        assert!(a.subtract(&b).is_err());
        let c = Iblt::with_cells(24, &cfg().with_seed(1));
        assert!(a.subtract(&c).is_err());
        let d = Iblt::with_cells(24, &IbltConfig::for_key_bytes(16, 0xFEED));
        assert!(a.subtract(&d).is_err());
    }

    #[test]
    fn overloaded_table_reports_incomplete() {
        // 12 cells cannot hold 500 keys; the peel must report incompleteness rather
        // than silently returning garbage.
        let mut t = Iblt::with_cells(12, &cfg());
        for x in 0..500u64 {
            t.insert_u64(x);
        }
        let d = t.decode();
        assert!(!d.complete);
        assert!(d.recovered() < 500);
        assert!(t.nonempty_cells() > 0);
        // The in-place peel leaves exactly the 2-core behind.
        let in_place = t.decode_in_place();
        assert_eq!(in_place, d);
        assert!(t.nonempty_cells() > 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn wide_keys_roundtrip() {
        let config = IbltConfig::for_key_bytes(40, 7);
        let mut rng = Xoshiro256::new(3);
        let keys: Vec<Vec<u8>> =
            (0..20).map(|_| (0..40).map(|_| rng.next_u64() as u8).collect()).collect();
        let mut t = Iblt::with_expected_diff(32, &config);
        for k in &keys {
            t.insert(k);
        }
        let d = t.decode();
        assert!(d.complete);
        let got: HashSet<Vec<u8>> = d.positive.into_iter().collect();
        assert_eq!(got, keys.into_iter().collect());
    }

    #[test]
    fn u64_keys_pad_identically_at_every_width() {
        // insert_u64 goes through the stack key buffer; at widths above 64 bytes it
        // must fall back to the heap with identical zero padding.
        for key_bytes in [8usize, 24, 64, 80] {
            let config = IbltConfig::for_key_bytes(key_bytes, 5);
            let mut via_u64 = Iblt::with_expected_diff(4, &config);
            via_u64.insert_u64(0xDEAD_BEEF);
            let mut via_bytes = Iblt::with_expected_diff(4, &config);
            let mut key = vec![0u8; key_bytes];
            key[..8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
            via_bytes.insert(&key);
            assert_eq!(via_u64, via_bytes, "key_bytes = {key_bytes}");
        }
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn wrong_key_width_panics() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert(&[1, 2, 3]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = Iblt::with_expected_diff(8, &cfg());
        for x in [1u64, 5, 9, 1 << 40] {
            t.insert_u64(x);
        }
        t.delete_u64(777);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(bytes.len(), cfg().serialized_len(t.cells()));
        let back = Iblt::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        let d = back.decode();
        assert!(d.complete);
        assert_eq!(d.positive.len(), 4);
        assert_eq!(d.negative_u64(), vec![777]);
    }

    #[test]
    fn bank_snapshot_roundtrips_and_matches_wire_decode() {
        let mut t = Iblt::with_expected_diff(16, &cfg());
        for x in 0..40u64 {
            t.insert_u64(x * 7 + 1);
        }
        t.delete_u64(99);
        let mut bank = Vec::new();
        t.encode_bank(&mut bank);
        assert_eq!(bank.len(), t.bank_len());
        let mut cursor = &bank[..];
        let restored = Iblt::decode_bank(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(restored, t);
        // The snapshot and the wire codec describe the same table.
        assert_eq!(restored, Iblt::from_bytes(&t.to_bytes()).unwrap());
    }

    #[test]
    fn bank_snapshot_rejects_truncation_and_garbage() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(5);
        let mut bank = Vec::new();
        t.encode_bank(&mut bank);
        for cut in [0, 1, bank.len() / 2, bank.len() - 1] {
            let mut cursor = &bank[..cut];
            assert!(Iblt::decode_bank(&mut cursor).is_err(), "cut at {cut}");
        }
        let mut overflow = Vec::new();
        write_uvarint(&mut overflow, u64::MAX - 15);
        write_uvarint(&mut overflow, 1);
        write_uvarint(&mut overflow, 1);
        overflow.extend_from_slice(&0u64.to_le_bytes());
        assert!(Iblt::decode_bank(&mut &overflow[..]).is_err());
    }

    #[test]
    fn decode_rejects_overflowing_header() {
        // A key width of usize::MAX - 15 would wrap the per-cell size (16 + kb)
        // to zero and defeat the length check; it must fail cleanly instead.
        let mut bytes = Vec::new();
        write_uvarint(&mut bytes, u64::MAX - 15); // key_bytes
        write_uvarint(&mut bytes, 1); // hash_count
        write_uvarint(&mut bytes, 1); // cell_count
        bytes.extend_from_slice(&0u64.to_le_bytes()); // seed
        bytes.extend_from_slice(&[0u8; 24]);
        assert!(Iblt::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_truncated_bytes() {
        let mut t = Iblt::with_expected_diff(8, &cfg());
        t.insert_u64(3);
        let bytes = t.to_bytes();
        assert!(Iblt::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn typical_sizing_decodes_reliably() {
        // Empirical check behind Theorem 2.1 / Corollary 2.2: with the default sizing
        // (2.2 cells per difference, k = 4), random differences of size 2..=64 decode
        // in the vast majority of trials.
        let mut failures = 0;
        let mut trials = 0;
        for d in [2usize, 4, 8, 16, 32, 64] {
            for trial in 0..30 {
                let config = IbltConfig::for_u64_keys(split_seed(999, (d * 100 + trial) as u64));
                let mut rng = Xoshiro256::new(trial as u64 * 7 + d as u64);
                let mut t = Iblt::with_expected_diff(d, &config);
                let keys: HashSet<u64> = (0..d).map(|_| rng.next_u64()).collect();
                for &k in &keys {
                    t.insert_u64(k);
                }
                let res = t.decode();
                trials += 1;
                if !res.complete || res.positive.len() != keys.len() {
                    failures += 1;
                }
            }
        }
        assert!(failures * 50 <= trials, "decode failure rate too high: {failures}/{trials}");
    }

    #[test]
    fn mixed_positive_negative_peeling() {
        let config = cfg();
        let mut t = Iblt::with_expected_diff(20, &config);
        for x in 0..10u64 {
            t.insert_u64(x);
        }
        for x in 100..110u64 {
            t.delete_u64(x);
        }
        let d = t.decode();
        assert!(d.complete);
        let pos: HashSet<u64> = d.positive_u64().into_iter().collect();
        let neg: HashSet<u64> = d.negative_u64().into_iter().collect();
        assert_eq!(pos, (0..10).collect());
        assert_eq!(neg, (100..110).collect());
    }

    #[test]
    fn same_key_inserted_and_deleted_cancels() {
        let mut a = Iblt::with_expected_diff(4, &cfg());
        a.insert_u64(5);
        let mut b = Iblt::with_expected_diff(4, &cfg());
        b.insert_u64(5);
        let diff = a.subtract(&b).unwrap();
        assert!(diff.is_empty());
        let d = diff.decode();
        assert!(d.complete);
        assert_eq!(d.recovered(), 0);
    }

    #[test]
    fn stash_layout_survives_wire_roundtrip_via_adopt_layout() {
        let cfg = IbltConfig::tuned_for_u64_keys(77);
        let mut original = Iblt::with_expected_diff(12, &cfg);
        assert_eq!(original.stash_cells(), cfg.stash_cells);
        let keys: Vec<u64> = (0..40u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        for &k in &keys {
            original.insert_u64(k);
        }
        // The wire format carries no decode-side metadata.
        let mut parsed = Iblt::from_bytes(&original.to_bytes()).unwrap();
        assert_eq!(parsed.stash_cells(), 0);
        parsed.adopt_layout(&cfg).unwrap();
        assert_eq!(parsed.stash_cells(), cfg.stash_cells);
        assert_eq!(parsed.rescue_budget(), cfg.rescue);
        // Same geometry after adoption: deleting the same keys drains the bank
        // (stash indices included).
        for &k in &keys {
            parsed.delete_u64(k);
        }
        assert!(parsed.is_empty());
    }

    #[test]
    fn adopt_layout_rejects_mismatched_configs() {
        let cfg = IbltConfig::tuned_for_u64_keys(5);
        let table = Iblt::with_expected_diff(8, &cfg);

        let mut t = table.clone();
        assert!(t.adopt_layout(&IbltConfig::tuned_for_key_bytes(16, 5)).is_err(), "key width");
        let mut t = table.clone();
        assert!(t.adopt_layout(&IbltConfig::tuned_for_u64_keys(6)).is_err(), "seed");
        // A stash split that leaves the partitioned remainder indivisible by
        // the hash count (or empty) must be refused.
        let mut t = table.clone();
        assert!(t.adopt_layout(&cfg.with_stash_cells(cfg.stash_cells + 1)).is_err());
        let mut t = table.clone();
        assert!(t.adopt_layout(&cfg.with_stash_cells(table.cells())).is_err());
        // And the original config is of course fine.
        let mut t = table.clone();
        assert!(t.adopt_layout(&cfg).is_ok());
    }

    #[test]
    fn combining_tables_requires_matching_stash_split() {
        // Same total cell count, different stash split: the keys live in
        // different partitions, so subtract/add must refuse.
        let stash_cfg = IbltConfig::for_u64_keys(9).with_hash_count(3).with_stash_cells(3);
        let flat_cfg = IbltConfig::for_u64_keys(9).with_hash_count(3);
        let with_stash = Iblt::with_cells(21, &stash_cfg);
        let without = Iblt::with_cells(24, &flat_cfg);
        assert_eq!(with_stash.cells(), without.cells());
        assert!(with_stash.subtract(&without).is_err());
        let mut acc = with_stash.clone();
        assert!(acc.add_assign(&without).is_err());
    }

    #[test]
    fn tuned_layout_is_tighter_than_classic_and_decodes_with_candidates() {
        let classic = IbltConfig::for_u64_keys(41);
        let tuned = IbltConfig::tuned_for_u64_keys(41);
        for d in [8usize, 32, 128, 512] {
            assert!(
                tuned.total_cells_for(d) < classic.total_cells_for(d),
                "tuned sizing must be strictly tighter at d = {d}"
            );
        }
        // And a tuned table still reconciles: worst-ish case, all-negative
        // difference at the tight factor, candidates in hand.
        let mut rng = Xoshiro256::new(0xCAFE);
        let shared: Vec<u64> = (0..500).map(|_| rng.next_u64()).collect();
        let extra: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut table = Iblt::with_expected_diff(32, &tuned);
        for &x in &shared {
            table.insert_u64(x);
        }
        let local: Vec<u64> = shared.iter().chain(&extra).copied().collect();
        for &x in &local {
            table.delete_u64(x);
        }
        let decoded = table.decode_in_place_with_candidates_u64(local.iter().copied());
        assert!(decoded.complete);
        let mut neg = decoded.negative_u64();
        neg.sort_unstable();
        let mut want = extra;
        want.sort_unstable();
        assert_eq!(neg, want);
    }
}
