//! The IBLT cell array, insert/delete/subtract operations and the peeling decoder.

use recon_base::hash::{hash64, hash_bytes};
use recon_base::rng::split_seed;
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;
use std::collections::VecDeque;

/// Configuration of an IBLT: key width, number of hash functions, sizing policy and
/// the public-coin seed from which the hash functions are derived.
///
/// Two parties can combine (subtract/decode) their IBLTs only if they used identical
/// configurations *and* the same number of cells; [`Iblt::subtract`] checks this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbltConfig {
    /// Width of every key in bytes. All keys inserted into a table must have exactly
    /// this length.
    pub key_bytes: usize,
    /// Number of hash functions `k` (the paper uses 3 or 4; default 4).
    pub hash_count: usize,
    /// Number of cells allocated per expected difference (the constant hidden in the
    /// paper's `O(d)`; default 2.2, which keeps the decode failure rate well below
    /// 1% for the difference sizes exercised in this repository).
    pub cells_per_diff: f64,
    /// Minimum number of cells regardless of the expected difference, so that very
    /// small tables still decode reliably.
    pub min_cells: usize,
    /// Public-coin seed; bucket hashes and the checksum hash are derived from it.
    pub seed: u64,
}

impl IbltConfig {
    /// A configuration for 8-byte (`u64`) keys with default sizing.
    pub fn for_u64_keys(seed: u64) -> Self {
        Self::for_key_bytes(8, seed)
    }

    /// A configuration for keys of `key_bytes` bytes with default sizing.
    pub fn for_key_bytes(key_bytes: usize, seed: u64) -> Self {
        Self { key_bytes, hash_count: 4, cells_per_diff: 2.2, min_cells: 24, seed }
    }

    /// Override the cells-per-difference safety factor (ablation knob for Thm 2.1's
    /// constant `c`).
    pub fn with_cells_per_diff(mut self, factor: f64) -> Self {
        self.cells_per_diff = factor;
        self
    }

    /// Override the number of hash functions.
    pub fn with_hash_count(mut self, k: usize) -> Self {
        self.hash_count = k;
        self
    }

    /// Override the minimum cell count. Small minimums shrink nested/cascaded child
    /// tables (whose decode failures are retried at later levels) at the cost of a
    /// slightly higher per-table failure rate.
    pub fn with_min_cells(mut self, min_cells: usize) -> Self {
        self.min_cells = min_cells.max(self.hash_count);
        self
    }

    /// Override the seed (derive per-role seeds with [`recon_base::rng::split_seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of cells allocated for an expected difference of `expected_diff` keys:
    /// `max(min_cells, ceil(cells_per_diff · expected_diff))`, rounded up to a
    /// multiple of `hash_count` so the table partitions evenly.
    pub fn cells_for(&self, expected_diff: usize) -> usize {
        let target = (self.cells_per_diff * expected_diff as f64).ceil() as usize;
        let m = target.max(self.min_cells).max(self.hash_count);
        m.div_ceil(self.hash_count) * self.hash_count
    }

    /// Serialized size in bytes of a table with `cells` cells under this
    /// configuration (count varint is bounded by 9 bytes, but small tables use 1–2;
    /// this returns the exact size of an empty table, which equals the size of any
    /// table because counts are encoded as fixed-width `i64`).
    pub fn serialized_len(&self, cells: usize) -> usize {
        // header: key_bytes, hash_count, cell count (varints) + seed (8 bytes)
        let header = uvarint_len(self.key_bytes as u64)
            + uvarint_len(self.hash_count as u64)
            + uvarint_len(cells as u64)
            + 8;
        header + cells * (8 + self.key_bytes + 8)
    }
}

fn uvarint_len(v: u64) -> usize {
    recon_base::wire::uvarint_len(v)
}

impl Default for IbltConfig {
    fn default() -> Self {
        Self::for_u64_keys(0)
    }
}

/// One IBLT cell: signed count, XOR of keys, XOR of key checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cell {
    count: i64,
    key_sum: Vec<u8>,
    check_sum: u64,
}

impl Cell {
    fn new(key_bytes: usize) -> Self {
        Self { count: 0, key_sum: vec![0; key_bytes], check_sum: 0 }
    }

    fn is_empty(&self) -> bool {
        self.count == 0 && self.check_sum == 0 && self.key_sum.iter().all(|&b| b == 0)
    }

    fn apply(&mut self, key: &[u8], checksum: u64, delta: i64) {
        self.count += delta;
        for (dst, src) in self.key_sum.iter_mut().zip(key) {
            *dst ^= src;
        }
        self.check_sum ^= checksum;
    }
}

/// The result of decoding (peeling) an IBLT.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodeResult {
    /// Keys that were inserted more often than deleted (for a subtracted pair of
    /// tables: keys only in Alice's set, `S_A \ S_B`).
    pub positive: Vec<Vec<u8>>,
    /// Keys that were deleted more often than inserted (`S_B \ S_A`).
    pub negative: Vec<Vec<u8>>,
    /// `true` if the table was fully emptied: every key was extracted. `false`
    /// indicates a peeling failure (non-empty 2-core), which Theorem 2.1 bounds by
    /// `O(1/poly(m))`.
    pub complete: bool,
}

impl DecodeResult {
    /// Positive keys reinterpreted as `u64` (first 8 bytes, little-endian).
    pub fn positive_u64(&self) -> Vec<u64> {
        self.positive.iter().map(|k| key_to_u64(k)).collect()
    }

    /// Negative keys reinterpreted as `u64` (first 8 bytes, little-endian).
    pub fn negative_u64(&self) -> Vec<u64> {
        self.negative.iter().map(|k| key_to_u64(k)).collect()
    }

    /// Total number of keys recovered.
    pub fn recovered(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Convert into a `Result`, mapping an incomplete peel to
    /// [`ReconError::PeelingFailure`].
    pub fn into_result(self) -> Result<Self, ReconError> {
        if self.complete {
            Ok(self)
        } else {
            Err(ReconError::PeelingFailure { remaining_cells: 0 })
        }
    }
}

/// Encode a `u64` into a key of `key_bytes` bytes (little-endian, zero padded).
pub(crate) fn u64_to_key(x: u64, key_bytes: usize) -> Vec<u8> {
    assert!(key_bytes >= 8, "u64 keys require key_bytes >= 8");
    let mut key = vec![0u8; key_bytes];
    key[..8].copy_from_slice(&x.to_le_bytes());
    key
}

fn key_to_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_le_bytes(buf)
}

/// An Invertible Bloom Lookup Table over fixed-width byte keys.
///
/// See the crate-level documentation for the data-structure description. The table is
/// cheap to clone (a flat `Vec` of cells) and serializes through
/// [`recon_base::wire::Encode`], which is how its communication cost is measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Iblt {
    key_bytes: usize,
    hash_count: usize,
    seed: u64,
    cells: Vec<Cell>,
}

impl Iblt {
    /// Create an empty table with exactly `cells` cells (rounded up to a multiple of
    /// the hash count).
    pub fn with_cells(cells: usize, cfg: &IbltConfig) -> Self {
        assert!(cfg.hash_count >= 1, "need at least one hash function");
        assert!(cfg.key_bytes >= 1, "keys must be at least one byte wide");
        let m = cells.max(cfg.hash_count).div_ceil(cfg.hash_count) * cfg.hash_count;
        Self {
            key_bytes: cfg.key_bytes,
            hash_count: cfg.hash_count,
            seed: cfg.seed,
            cells: (0..m).map(|_| Cell::new(cfg.key_bytes)).collect(),
        }
    }

    /// Create an empty table sized for an expected difference of `expected_diff`
    /// keys, using the configuration's sizing policy ([`IbltConfig::cells_for`]).
    pub fn with_expected_diff(expected_diff: usize, cfg: &IbltConfig) -> Self {
        Self::with_cells(cfg.cells_for(expected_diff), cfg)
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Width of the keys stored in this table, in bytes.
    pub fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> usize {
        self.hash_count
    }

    /// The public-coin seed this table was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` if every cell is zero (the represented multiset difference is empty).
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(Cell::is_empty)
    }

    /// The `hash_count` distinct cell indices of a key (partitioned hashing).
    fn indices(&self, key: &[u8]) -> Vec<usize> {
        let part = self.cells.len() / self.hash_count;
        let base = hash_bytes(key, split_seed(self.seed, 0xB0CC));
        (0..self.hash_count)
            .map(|j| {
                let h = hash64(base, split_seed(self.seed, j as u64 + 1));
                j * part + (h % part as u64) as usize
            })
            .collect()
    }

    fn checksum(&self, key: &[u8]) -> u64 {
        hash_bytes(key, split_seed(self.seed, 0xC4EC))
    }

    fn apply(&mut self, key: &[u8], delta: i64) {
        assert_eq!(
            key.len(),
            self.key_bytes,
            "key width {} does not match table key width {}",
            key.len(),
            self.key_bytes
        );
        let checksum = self.checksum(key);
        for idx in self.indices(key) {
            self.cells[idx].apply(key, checksum, delta);
        }
    }

    /// Insert a key (a "positive" occurrence).
    pub fn insert(&mut self, key: &[u8]) {
        self.apply(key, 1);
    }

    /// Delete a key (a "negative" occurrence; counts may go negative, which is how a
    /// single table represents both sides of a set difference).
    pub fn delete(&mut self, key: &[u8]) {
        self.apply(key, -1);
    }

    /// Insert a `u64` key (zero-padded to the table's key width).
    pub fn insert_u64(&mut self, x: u64) {
        let key = u64_to_key(x, self.key_bytes);
        self.insert(&key);
    }

    /// Delete a `u64` key.
    pub fn delete_u64(&mut self, x: u64) {
        let key = u64_to_key(x, self.key_bytes);
        self.delete(&key);
    }

    /// Cell-wise subtraction `self − other`: the result represents the symmetric
    /// difference of the two encoded sets (Alice's elements as positive keys, Bob's
    /// as negative). Fails if the two tables do not share geometry and seed.
    pub fn subtract(&self, other: &Iblt) -> Result<Iblt, ReconError> {
        if self.key_bytes != other.key_bytes
            || self.hash_count != other.hash_count
            || self.seed != other.seed
            || self.cells.len() != other.cells.len()
        {
            return Err(ReconError::InvalidInput(
                "cannot subtract IBLTs with different geometry or seed".to_string(),
            ));
        }
        let mut out = self.clone();
        for (c, o) in out.cells.iter_mut().zip(&other.cells) {
            c.count -= o.count;
            for (dst, src) in c.key_sum.iter_mut().zip(&o.key_sum) {
                *dst ^= src;
            }
            c.check_sum ^= o.check_sum;
        }
        Ok(out)
    }

    /// `true` if the cell currently holds exactly one key (count ±1 and the checksum
    /// of its key sum matches its checksum sum).
    fn is_pure(&self, idx: usize) -> bool {
        let cell = &self.cells[idx];
        (cell.count == 1 || cell.count == -1) && self.checksum(&cell.key_sum) == cell.check_sum
    }

    /// Decode (peel) the table, returning the recovered positive and negative keys.
    ///
    /// This consumes a clone of the cells; the table itself is left untouched so the
    /// caller can retry with different strategies or report diagnostics.
    pub fn decode(&self) -> DecodeResult {
        self.clone().into_decode()
    }

    /// Decode (peel) the table, consuming it.
    pub fn into_decode(mut self) -> DecodeResult {
        let mut result = DecodeResult::default();
        let mut queue: VecDeque<usize> =
            (0..self.cells.len()).filter(|&i| self.is_pure(i)).collect();

        while let Some(idx) = queue.pop_front() {
            if !self.is_pure(idx) {
                continue;
            }
            let count = self.cells[idx].count;
            let key = self.cells[idx].key_sum.clone();
            // Remove the key from the table: if it was a positive key, delete it; if
            // negative, add it back (as described in Section 2 of the paper).
            if count == 1 {
                result.positive.push(key.clone());
                self.apply(&key, -1);
            } else {
                result.negative.push(key.clone());
                self.apply(&key, 1);
            }
            for touched in self.indices(&key) {
                if self.is_pure(touched) {
                    queue.push_back(touched);
                }
            }
        }

        result.complete = self.is_empty();
        result
    }

    /// Number of cells that are currently non-empty (diagnostic for peeling
    /// failures).
    pub fn nonempty_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }

    /// The exact serialized size of this table in bytes.
    pub fn serialized_len(&self) -> usize {
        Encode::encoded_len(self)
    }
}

impl Encode for Iblt {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.key_bytes as u64);
        write_uvarint(buf, self.hash_count as u64);
        write_uvarint(buf, self.cells.len() as u64);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        for cell in &self.cells {
            buf.extend_from_slice(&cell.count.to_le_bytes());
            buf.extend_from_slice(&cell.key_sum);
            buf.extend_from_slice(&cell.check_sum.to_le_bytes());
        }
    }

    fn encoded_len(&self) -> usize {
        uvarint_len(self.key_bytes as u64)
            + uvarint_len(self.hash_count as u64)
            + uvarint_len(self.cells.len() as u64)
            + 8
            + self.cells.len() * (8 + self.key_bytes + 8)
    }
}

impl Decode for Iblt {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let key_bytes = read_uvarint(buf)? as usize;
        let hash_count = read_uvarint(buf)? as usize;
        let cell_count = read_uvarint(buf)? as usize;
        if key_bytes == 0 || hash_count == 0 {
            return Err(WireError::Invalid("IBLT header"));
        }
        if cell_count.saturating_mul(16 + key_bytes) > buf.len().saturating_add(16) + buf.len() * 2
        {
            // Loose sanity bound; precise length errors surface below.
        }
        let seed = u64::decode(buf)?;
        let mut cells = Vec::with_capacity(cell_count);
        for _ in 0..cell_count {
            let count = i64::decode(buf)?;
            if buf.len() < key_bytes {
                return Err(WireError::UnexpectedEnd);
            }
            let (key_sum, rest) = buf.split_at(key_bytes);
            *buf = rest;
            let check_sum = u64::decode(buf)?;
            cells.push(Cell { count, key_sum: key_sum.to_vec(), check_sum });
        }
        Ok(Iblt { key_bytes, hash_count, seed, cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;
    use std::collections::HashSet;

    fn cfg() -> IbltConfig {
        IbltConfig::for_u64_keys(0xFEED)
    }

    #[test]
    fn cells_for_respects_minimum_and_rounding() {
        let c = cfg();
        assert_eq!(c.cells_for(0), 24);
        assert_eq!(c.cells_for(1) % c.hash_count, 0);
        assert!(c.cells_for(100) >= 220);
    }

    #[test]
    fn insert_then_delete_leaves_table_empty() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(42);
        assert!(!t.is_empty());
        t.delete_u64(42);
        assert!(t.is_empty());
    }

    #[test]
    fn single_key_decodes() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(7);
        let d = t.decode();
        assert!(d.complete);
        assert_eq!(d.positive_u64(), vec![7]);
        assert!(d.negative.is_empty());
    }

    #[test]
    fn negative_key_decodes() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.delete_u64(9);
        let d = t.decode();
        assert!(d.complete);
        assert_eq!(d.negative_u64(), vec![9]);
        assert!(d.positive.is_empty());
    }

    #[test]
    fn decode_does_not_mutate_table() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert_u64(1);
        let before = t.clone();
        let _ = t.decode();
        assert_eq!(t, before);
    }

    #[test]
    fn subtract_recovers_symmetric_difference() {
        let config = cfg();
        let mut alice = Iblt::with_expected_diff(16, &config);
        let mut bob = Iblt::with_expected_diff(16, &config);
        for x in 0..1000u64 {
            alice.insert_u64(x);
        }
        for x in 5..1005u64 {
            bob.insert_u64(x);
        }
        let diff = alice.subtract(&bob).unwrap();
        let d = diff.decode();
        assert!(d.complete);
        let pos: HashSet<u64> = d.positive_u64().into_iter().collect();
        let neg: HashSet<u64> = d.negative_u64().into_iter().collect();
        assert_eq!(pos, (0..5).collect());
        assert_eq!(neg, (1000..1005).collect());
    }

    #[test]
    fn subtract_requires_matching_geometry() {
        let a = Iblt::with_cells(24, &cfg());
        let b = Iblt::with_cells(36, &cfg());
        assert!(a.subtract(&b).is_err());
        let c = Iblt::with_cells(24, &cfg().with_seed(1));
        assert!(a.subtract(&c).is_err());
        let d = Iblt::with_cells(24, &IbltConfig::for_key_bytes(16, 0xFEED));
        assert!(a.subtract(&d).is_err());
    }

    #[test]
    fn overloaded_table_reports_incomplete() {
        // 12 cells cannot hold 500 keys; the peel must report incompleteness rather
        // than silently returning garbage.
        let mut t = Iblt::with_cells(12, &cfg());
        for x in 0..500u64 {
            t.insert_u64(x);
        }
        let d = t.decode();
        assert!(!d.complete);
        assert!(d.recovered() < 500);
        assert!(t.nonempty_cells() > 0);
    }

    #[test]
    fn wide_keys_roundtrip() {
        let config = IbltConfig::for_key_bytes(40, 7);
        let mut rng = Xoshiro256::new(3);
        let keys: Vec<Vec<u8>> =
            (0..20).map(|_| (0..40).map(|_| rng.next_u64() as u8).collect()).collect();
        let mut t = Iblt::with_expected_diff(32, &config);
        for k in &keys {
            t.insert(k);
        }
        let d = t.decode();
        assert!(d.complete);
        let got: HashSet<Vec<u8>> = d.positive.into_iter().collect();
        assert_eq!(got, keys.into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn wrong_key_width_panics() {
        let mut t = Iblt::with_expected_diff(4, &cfg());
        t.insert(&[1, 2, 3]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = Iblt::with_expected_diff(8, &cfg());
        for x in [1u64, 5, 9, 1 << 40] {
            t.insert_u64(x);
        }
        t.delete_u64(777);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(bytes.len(), cfg().serialized_len(t.cells()));
        let back = Iblt::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        let d = back.decode();
        assert!(d.complete);
        assert_eq!(d.positive.len(), 4);
        assert_eq!(d.negative_u64(), vec![777]);
    }

    #[test]
    fn decode_rejects_truncated_bytes() {
        let mut t = Iblt::with_expected_diff(8, &cfg());
        t.insert_u64(3);
        let bytes = t.to_bytes();
        assert!(Iblt::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn typical_sizing_decodes_reliably() {
        // Empirical check behind Theorem 2.1 / Corollary 2.2: with the default sizing
        // (2.2 cells per difference, k = 4), random differences of size 2..=64 decode
        // in the vast majority of trials.
        let mut failures = 0;
        let mut trials = 0;
        for d in [2usize, 4, 8, 16, 32, 64] {
            for trial in 0..30 {
                let config = IbltConfig::for_u64_keys(split_seed(999, (d * 100 + trial) as u64));
                let mut rng = Xoshiro256::new(trial as u64 * 7 + d as u64);
                let mut t = Iblt::with_expected_diff(d, &config);
                let keys: HashSet<u64> = (0..d).map(|_| rng.next_u64()).collect();
                for &k in &keys {
                    t.insert_u64(k);
                }
                let res = t.decode();
                trials += 1;
                if !res.complete || res.positive.len() != keys.len() {
                    failures += 1;
                }
            }
        }
        assert!(failures * 50 <= trials, "decode failure rate too high: {failures}/{trials}");
    }

    #[test]
    fn mixed_positive_negative_peeling() {
        let config = cfg();
        let mut t = Iblt::with_expected_diff(20, &config);
        for x in 0..10u64 {
            t.insert_u64(x);
        }
        for x in 100..110u64 {
            t.delete_u64(x);
        }
        let d = t.decode();
        assert!(d.complete);
        let pos: HashSet<u64> = d.positive_u64().into_iter().collect();
        let neg: HashSet<u64> = d.negative_u64().into_iter().collect();
        assert_eq!(pos, (0..10).collect());
        assert_eq!(neg, (100..110).collect());
    }

    #[test]
    fn same_key_inserted_and_deleted_cancels() {
        let mut a = Iblt::with_expected_diff(4, &cfg());
        a.insert_u64(5);
        let mut b = Iblt::with_expected_diff(4, &cfg());
        b.insert_u64(5);
        let diff = a.subtract(&b).unwrap();
        assert!(diff.is_empty());
        let d = diff.decode();
        assert!(d.complete);
        assert_eq!(d.recovered(), 0);
    }
}
