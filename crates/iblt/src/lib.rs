//! # recon-iblt
//!
//! Invertible Bloom Lookup Tables (IBLTs), the workhorse data structure of
//! *"Reconciling Graphs and Sets of Sets"* (Mitzenmacher & Morgan, PODS 2018) and of
//! practical set reconciliation in general (Goodrich & Mitzenmacher 2011; Eppstein,
//! Goodrich, Uyeda & Varghese 2011).
//!
//! An IBLT is a hash table with `k` hash functions and `m` cells. Each cell stores a
//! signed **count**, the **XOR of all keys** hashed to it, and the **XOR of a
//! checksum** of those keys. Inserting a key increments the counts of its `k` cells
//! and XORs the key and its checksum in; deleting does the reverse (counts may go
//! negative, so the table can represent a *difference* of two sets). Subtracting
//! Bob's table from Alice's leaves only the symmetric difference, which is recovered
//! by **peeling**: any cell whose count is ±1 and whose checksum matches its key sum
//! holds exactly one key, which can be reported and removed, possibly exposing more
//! such cells (Theorem 2.1 of the paper: `m = O(d)` cells suffice to list `d` keys
//! with probability `1 − O(1/poly(m))`).
//!
//! ## Design notes
//!
//! * Keys are **fixed-width byte strings** (`key_bytes` per table). The set-of-sets
//!   protocols store entire serialized child IBLTs as keys of an outer IBLT
//!   (Algorithms 1 and 2), so restricting keys to `u64` would not work. Convenience
//!   methods for `u64` keys are provided.
//! * Hashing is **partitioned**: hash function `j` owns cells
//!   `[j·m/k, (j+1)·m/k)`, so the `k` cells of a key are always distinct, exactly as
//!   the paper assumes ("we assume these cells are distinct; for example, one can use
//!   a partitioned hash table").
//! * All hash functions are derived from a single seed (public coins), so Alice and
//!   Bob build structurally identical tables without communication.
//! * Failure modes are explicit: [`DecodeResult::complete`] distinguishes a clean
//!   decode from a peeling failure, and checksum verification rejects cells that
//!   *look* pure but are not.
//! * Peeling failures are not final: the [`rescue`] module collects the
//!   residual cells of a stalled peel into a sparse GF(2) system and finishes
//!   the decode algebraically, verifying every recovered key against its
//!   checksum before accepting it. This is what lets the tuned sizing
//!   ([`IbltConfig::tuned_for_u64_keys`]) run near the peeling wall instead of
//!   at the classic `2.2·d`.
//!
//! ## Example
//!
//! ```
//! use recon_iblt::{Iblt, IbltConfig};
//!
//! let cfg = IbltConfig::for_u64_keys(1234);
//! // Alice encodes her set, Bob encodes his; the difference is {3, 4} vs {100}.
//! let mut alice = Iblt::with_expected_diff(8, &cfg);
//! for x in [1u64, 2, 3, 4] { alice.insert_u64(x); }
//! let mut bob = Iblt::with_expected_diff(8, &cfg);
//! for x in [1u64, 2, 100] { bob.insert_u64(x); }
//!
//! let diff = alice.subtract(&bob).expect("same geometry");
//! let decoded = diff.decode();
//! assert!(decoded.complete);
//! let mut only_alice = decoded.positive_u64();
//! only_alice.sort_unstable();
//! assert_eq!(only_alice, vec![3, 4]);
//! assert_eq!(decoded.negative_u64(), vec![100]);
//! ```

// Unsafe code is denied crate-wide and re-allowed only inside `kernels`, whose
// `std::arch` intrinsic calls are each gated on runtime CPU-feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod rescue;
mod table;

pub use kernels::{active_kernel, force_scalar_kernels};
pub use rescue::{decode_rescues, rescue_failures, DecodeBudget};
pub use table::{DecodeResult, Iblt, IbltConfig};
