//! Fixed-width kernels over the flat cell bank.
//!
//! The bulk operations on an IBLT — cell-wise subtract/add of two tables and the
//! XOR of their key-sum and checksum banks — are straight passes over contiguous
//! buffers, so they are written here as explicit chunked loops: four 64-bit lanes
//! (one 256-bit vector) per step, with a scalar tail. On x86_64 a runtime check
//! (`is_x86_feature_detected!("avx2")`) selects a `std::arch` AVX2 path; every
//! other target, and any run with the scalar override engaged, takes the safe
//! chunked-scalar loops, which LLVM auto-vectorizes at whatever width the target
//! baseline allows.
//!
//! Both paths produce bit-identical results (XOR and two's-complement wrapping
//! addition are lane-exact), which `crates/iblt/tests/soa_reference.rs` pins with
//! SIMD-vs-scalar differential tests.
//!
//! # Dispatch policy
//!
//! * The AVX2 path is used iff the CPU reports AVX2 at runtime **and** the scalar
//!   override is off. Detection runs once and is cached.
//! * The override is engaged either by the `RECON_IBLT_FORCE_SCALAR` environment
//!   variable (any value but `0`/`false`/empty, read once per process) or
//!   programmatically via [`force_scalar_kernels`] — a process-global knob meant
//!   for differential tests and benchmarks, not for production tuning.

// The only unsafe code in this crate: `std::arch` intrinsic calls, each gated on
// the runtime AVX2 check and operating strictly in-bounds.
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// 64-bit lanes per chunk; one 256-bit vector.
const LANES: usize = 4;
/// Bytes per chunk in the byte-bank kernels.
const BYTE_LANES: usize = 32;

/// Force every bank kernel onto the scalar fallback path (process-global).
///
/// The kernels are bit-identical across paths, so this changes performance only;
/// it exists so differential tests and benchmarks can pin the fallback explicitly.
/// A thin alias for [`recon_base::config::set_force_scalar_kernels`]; the
/// `RECON_IBLT_FORCE_SCALAR` environment variable has the same effect without
/// recompiling.
pub fn force_scalar_kernels(force: bool) {
    recon_base::config::set_force_scalar_kernels(force);
}

#[cfg(target_arch = "x86_64")]
fn avx2_detected() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| is_x86_feature_detected!("avx2"))
}

#[inline]
fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2_detected() && !recon_base::config::scalar_kernels_forced()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Name of the kernel path the next bulk operation will take (`"avx2"` or
/// `"scalar"`), considering CPU detection and the scalar override.
pub fn active_kernel() -> &'static str {
    if use_avx2() {
        "avx2"
    } else {
        "scalar"
    }
}

/// `dst[i] ^= src[i]` over a byte bank. Slices must have equal lengths.
#[inline]
pub(crate) fn xor_bytes(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: reachable only when the running CPU reports AVX2.
        unsafe { xor_bytes_avx2(dst, src) };
        return;
    }
    xor_bytes_scalar(dst, src);
}

fn xor_bytes_scalar(dst: &mut [u8], src: &[u8]) {
    let (dc, dr) = dst.as_chunks_mut::<BYTE_LANES>();
    let (sc, sr) = src.as_chunks::<BYTE_LANES>();
    for (d, s) in dc.iter_mut().zip(sc) {
        for lane in 0..BYTE_LANES {
            d[lane] ^= s[lane];
        }
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d ^= s;
    }
}

/// `dst[i] ^= src[i]` over a `u64` bank. Slices must have equal lengths.
#[inline]
pub(crate) fn xor_u64(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: reachable only when the running CPU reports AVX2.
        unsafe { xor_u64_avx2(dst, src) };
        return;
    }
    xor_u64_scalar(dst, src);
}

fn xor_u64_scalar(dst: &mut [u64], src: &[u64]) {
    let (dc, dr) = dst.as_chunks_mut::<LANES>();
    let (sc, sr) = src.as_chunks::<LANES>();
    for (d, s) in dc.iter_mut().zip(sc) {
        for lane in 0..LANES {
            d[lane] ^= s[lane];
        }
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d ^= s;
    }
}

/// `dst[i] = dst[i].wrapping_add(src[i])` over an `i64` bank (counts never come
/// near the wrap in practice; wrapping keeps the lanes exact on both paths).
#[inline]
pub(crate) fn add_i64(dst: &mut [i64], src: &[i64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: reachable only when the running CPU reports AVX2.
        unsafe { add_i64_avx2(dst, src) };
        return;
    }
    add_i64_scalar(dst, src);
}

fn add_i64_scalar(dst: &mut [i64], src: &[i64]) {
    let (dc, dr) = dst.as_chunks_mut::<LANES>();
    let (sc, sr) = src.as_chunks::<LANES>();
    for (d, s) in dc.iter_mut().zip(sc) {
        for lane in 0..LANES {
            d[lane] = d[lane].wrapping_add(s[lane]);
        }
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d = d.wrapping_add(*s);
    }
}

/// `dst[i] = dst[i].wrapping_sub(src[i])` over an `i64` bank.
#[inline]
pub(crate) fn sub_i64(dst: &mut [i64], src: &[i64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: reachable only when the running CPU reports AVX2.
        unsafe { sub_i64_avx2(dst, src) };
        return;
    }
    sub_i64_scalar(dst, src);
}

fn sub_i64_scalar(dst: &mut [i64], src: &[i64]) {
    let (dc, dr) = dst.as_chunks_mut::<LANES>();
    let (sc, sr) = src.as_chunks::<LANES>();
    for (d, s) in dc.iter_mut().zip(sc) {
        for lane in 0..LANES {
            d[lane] = d[lane].wrapping_sub(s[lane]);
        }
    }
    for (d, s) in dr.iter_mut().zip(sr) {
        *d = d.wrapping_sub(*s);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_loadu_si256, _mm256_storeu_si256, _mm256_sub_epi64,
        _mm256_xor_si256,
    };

    /// Apply `op` to 32-byte chunks of `dst`/`src` in place and return the index
    /// of the first byte the vector loop did not cover.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn chunked(
        dst: *mut u8,
        src: *const u8,
        len: usize,
        op: impl Fn(__m256i, __m256i) -> __m256i,
    ) -> usize {
        let chunks = len / 32;
        for i in 0..chunks {
            // SAFETY: `i * 32 + 32 <= len`, so the unaligned loads and store stay
            // inside both buffers.
            unsafe {
                let d = _mm256_loadu_si256(dst.add(i * 32) as *const __m256i);
                let s = _mm256_loadu_si256(src.add(i * 32) as *const __m256i);
                _mm256_storeu_si256(dst.add(i * 32) as *mut __m256i, op(d, s));
            }
        }
        chunks * 32
    }

    /// # Safety
    /// Requires AVX2 (callers gate on runtime detection).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_bytes_avx2(dst: &mut [u8], src: &[u8]) {
        let n = dst.len();
        // SAFETY: pointers and length come from equal-length slices.
        let done =
            unsafe { chunked(dst.as_mut_ptr(), src.as_ptr(), n, |d, s| _mm256_xor_si256(d, s)) };
        for i in done..n {
            dst[i] ^= src[i];
        }
    }

    /// # Safety
    /// Requires AVX2 (callers gate on runtime detection).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_u64_avx2(dst: &mut [u64], src: &[u64]) {
        let n = dst.len();
        // SAFETY: reinterpreting a u64 bank as bytes is lossless for XOR.
        let done = unsafe {
            chunked(dst.as_mut_ptr() as *mut u8, src.as_ptr() as *const u8, n * 8, |d, s| {
                _mm256_xor_si256(d, s)
            })
        } / 8;
        for i in done..n {
            dst[i] ^= src[i];
        }
    }

    /// # Safety
    /// Requires AVX2 (callers gate on runtime detection).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_i64_avx2(dst: &mut [i64], src: &[i64]) {
        let n = dst.len();
        // SAFETY: `_mm256_add_epi64` is lane-wise wrapping addition on 64-bit
        // lanes, exactly the scalar fallback's semantics.
        let done = unsafe {
            chunked(dst.as_mut_ptr() as *mut u8, src.as_ptr() as *const u8, n * 8, |d, s| {
                _mm256_add_epi64(d, s)
            })
        } / 8;
        for i in done..n {
            dst[i] = dst[i].wrapping_add(src[i]);
        }
    }

    /// # Safety
    /// Requires AVX2 (callers gate on runtime detection).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_i64_avx2(dst: &mut [i64], src: &[i64]) {
        let n = dst.len();
        // SAFETY: `_mm256_sub_epi64` is lane-wise wrapping subtraction.
        let done = unsafe {
            chunked(dst.as_mut_ptr() as *mut u8, src.as_ptr() as *const u8, n * 8, |d, s| {
                _mm256_sub_epi64(d, s)
            })
        } / 8;
        for i in done..n {
            dst[i] = dst[i].wrapping_sub(src[i]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{add_i64_avx2, sub_i64_avx2, xor_bytes_avx2, xor_u64_avx2};

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, salt: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt)).collect()
    }

    #[test]
    fn xor_bytes_matches_naive_at_odd_lengths() {
        for n in [0usize, 1, 7, 31, 32, 33, 64, 97, 1024, 1037] {
            let mut dst = bytes(n, 3);
            let src = bytes(n, 11);
            let expected: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
            xor_bytes(&mut dst, &src);
            assert_eq!(dst, expected, "n = {n}");
            // The scalar path agrees byte for byte.
            let mut scalar = bytes(n, 3);
            xor_bytes_scalar(&mut scalar, &src);
            assert_eq!(scalar, dst, "scalar vs dispatched, n = {n}");
        }
    }

    #[test]
    fn u64_and_i64_kernels_match_naive_at_odd_lengths() {
        for n in [0usize, 1, 3, 4, 5, 8, 13, 256, 259] {
            let mut xd: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let xs: Vec<u64> = (0..n as u64).map(|i| i.rotate_left(17) ^ 0xABCD).collect();
            let expected: Vec<u64> = xd.iter().zip(&xs).map(|(d, s)| d ^ s).collect();
            xor_u64(&mut xd, &xs);
            assert_eq!(xd, expected, "xor n = {n}");

            let mut ad: Vec<i64> = (0..n as i64).map(|i| i * 7 - 3).collect();
            let asrc: Vec<i64> = (0..n as i64).map(|i| i64::MAX - i * 11).collect();
            let add_expected: Vec<i64> =
                ad.iter().zip(&asrc).map(|(d, s)| d.wrapping_add(*s)).collect();
            let sub_expected: Vec<i64> =
                ad.iter().zip(&asrc).map(|(d, s)| d.wrapping_sub(*s)).collect();
            let mut sd = ad.clone();
            add_i64(&mut ad, &asrc);
            assert_eq!(ad, add_expected, "add n = {n}");
            sub_i64(&mut sd, &asrc);
            assert_eq!(sd, sub_expected, "sub n = {n}");
        }
    }

    #[test]
    fn scalar_override_switches_the_active_kernel() {
        let before = active_kernel();
        force_scalar_kernels(true);
        assert_eq!(active_kernel(), "scalar");
        // Kernels still compute the same results with the override on.
        let mut dst = bytes(100, 1);
        let src = bytes(100, 2);
        let expected: Vec<u8> = dst.iter().zip(&src).map(|(d, s)| d ^ s).collect();
        xor_bytes(&mut dst, &src);
        assert_eq!(dst, expected);
        force_scalar_kernels(false);
        assert_eq!(active_kernel(), before);
    }
}
