//! The GF(2) decode-rescue pipeline: finish a stalled peel algebraically.
//!
//! A peeling failure leaves a residual system: every non-empty cell is the
//! XOR of the `(key ‖ checksum)` vectors of the keys still hashed to it, plus
//! a signed count. Peeling can only make progress on cells holding exactly
//! one key; the rescue makes progress on *any* cell it can fully explain as a
//! subset of candidate keys:
//!
//! 1. **Candidates.** The decoder usually knows most keys that can appear on
//!    the negative side — in set reconciliation Bob deleted his own elements,
//!    so every negative key is one of his. Candidates whose cells are all
//!    non-empty are collected (sorted, deduplicated, capped by the
//!    [`DecodeBudget`]). On top of that, the residual cells themselves are
//!    Gaussian-reduced ([`SubsetXorSolver`] basis rows): a reduced row whose
//!    checksum segment matches the checksum of its key segment is a key the
//!    2-core *forces*, and joins the pool with unknown sign.
//! 2. **Per-cell subset solve.** For each residual cell, the candidates
//!    hashed to it form a subset-XOR system over `8·key_bytes + 64` bits.
//!    A *unique* solution whose signs are forced by the cell's count
//!    (`Σ sign = count`) is accepted: over-determination by the 64-bit
//!    checksum plane makes a false acceptance as unlikely as an undetected
//!    checksum failure in the peel itself.
//! 3. **Alternate with peeling.** Accepted keys are removed from the whole
//!    table, which typically re-opens ordinary peeling; the loop alternates
//!    solve and peel rounds until the table drains or a round makes no
//!    progress.
//!
//! Everything is bounded by the [`DecodeBudget`] threaded through
//! [`IbltConfig`](crate::IbltConfig), and `RECON_IBLT_FORCE_PEEL_ONLY`
//! ([`recon_base::config`]) disables the whole pipeline for fallback-pinning
//! CI legs. The [`decode_rescues`]/[`rescue_failures`] process counters let
//! tests and daemons observe how often the solver saves a session.

use crate::table::{DecodeResult, Iblt};
use recon_field::{BitVec, SubsetSolution, SubsetXorSolver};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of decodes completed by the rescue solver after the
/// peel stalled (the sessions the solver saved).
static DECODE_RESCUES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of rescue attempts that still could not complete the
/// decode (the table stayed non-empty and the caller saw a peeling failure).
static RESCUE_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Number of stalled decodes the rescue solver has completed in this process.
pub fn decode_rescues() -> u64 {
    DECODE_RESCUES.load(Ordering::Relaxed)
}

/// Number of rescue attempts in this process that failed to complete a decode.
pub fn rescue_failures() -> u64 {
    RESCUE_FAILURES.load(Ordering::Relaxed)
}

/// Bounds on the work the rescue solver may spend on one stalled decode.
///
/// The defaults are sized so a rescue costs at most a few hundred
/// microseconds — far below the retransmission it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeBudget {
    /// Rescue only when the peel left at most this many non-empty cells
    /// (a genuinely overloaded table is not worth solving).
    pub max_residual_cells: usize,
    /// Cap on the candidate pool (after filtering to keys whose cells are all
    /// non-empty, sorting and deduplicating).
    pub max_candidates: usize,
    /// Maximum solve → peel alternations before giving up.
    pub max_rounds: usize,
}

impl Default for DecodeBudget {
    fn default() -> Self {
        // The candidate cap is deliberately generous: for large shared sets
        // many keys pass the plausibility filter by chance, and a tight cap
        // would crowd the true candidates out of the pool. The real work
        // bound is per cell (at most 64 generators per subset solve).
        Self { max_residual_cells: 128, max_candidates: 8192, max_rounds: 8 }
    }
}

/// The candidate pool: keys that may explain residual cells.
struct Pool {
    key_bytes: usize,
    /// Flat key storage at stride `key_bytes`.
    keys: Vec<u8>,
    checksums: Vec<u64>,
    /// `Some(±1)` when the caller knows the key's side (negative candidates
    /// from the decoder's own set), `None` for keys discovered by basis
    /// isolation (the cell count equations must then force the sign).
    signs: Vec<Option<i64>>,
    /// Cell indices of each candidate.
    cells: Vec<Vec<usize>>,
    used: Vec<bool>,
}

impl Pool {
    fn new(key_bytes: usize) -> Self {
        Self {
            key_bytes,
            keys: Vec::new(),
            checksums: Vec::new(),
            signs: Vec::new(),
            cells: Vec::new(),
            used: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.signs.len()
    }

    fn key(&self, i: usize) -> &[u8] {
        &self.keys[i * self.key_bytes..(i + 1) * self.key_bytes]
    }

    fn contains_key(&self, key: &[u8]) -> bool {
        (0..self.len()).any(|i| self.key(i) == key)
    }

    fn push(&mut self, key: &[u8], checksum: u64, sign: Option<i64>, cells: Vec<usize>) {
        self.keys.extend_from_slice(key);
        self.checksums.push(checksum);
        self.signs.push(sign);
        self.cells.push(cells);
        self.used.push(false);
    }
}

/// `(key ‖ checksum)` as a GF(2) vector, reusing `scratch`.
fn cell_vector(key_sum: &[u8], check_sum: u64, scratch: &mut Vec<u8>) -> BitVec {
    scratch.clear();
    scratch.extend_from_slice(key_sum);
    scratch.extend_from_slice(&check_sum.to_le_bytes());
    BitVec::from_bytes(scratch)
}

/// Try to finish a stalled decode. `table` must already be peeled (and
/// non-empty); `negative_candidates` are keys the caller knows may appear on
/// the negative side. Updates the process counters and returns `true` when
/// the table was drained.
pub(crate) fn rescue_in_place(
    table: &mut Iblt,
    result: &mut DecodeResult,
    negative_candidates: &[&[u8]],
    budget: DecodeBudget,
) -> bool {
    debug_assert!(!table.is_empty());
    let kb = table.key_bytes();
    let dim = kb * 8 + 64;
    let mut scratch = Vec::with_capacity(kb + 8);
    let mut pool = Pool::new(kb);
    let mut seeded = false;

    for _round in 0..budget.max_rounds.max(1) {
        let residual = table.nonempty_cell_indices();
        if residual.is_empty() {
            break;
        }
        if residual.len() > budget.max_residual_cells {
            RESCUE_FAILURES.fetch_add(1, Ordering::Relaxed);
            return false;
        }

        if !seeded {
            seeded = true;
            seed_pool(table, &mut pool, negative_candidates, budget.max_candidates);
        } else {
            // Re-apply the plausibility filter: a candidate one of whose cells
            // has since drained cannot be present, and retiring it sharpens
            // the remaining subset solves (false candidates are what pushes a
            // cell past the generator bound or into ambiguity).
            for i in 0..pool.len() {
                if !pool.used[i] && pool.cells[i].iter().any(|&c| table.cell_is_empty(c)) {
                    pool.used[i] = true;
                }
            }
        }
        discover_candidates(table, &residual, &mut pool, dim, &mut scratch);

        // Per-cell subset solve over the candidates hashed to each cell.
        let mut progress = false;
        for &cell in &residual {
            if table.cell_is_empty(cell) {
                continue; // drained by an earlier acceptance this round
            }
            let gens: Vec<usize> = (0..pool.len())
                .filter(|&i| !pool.used[i] && pool.cells[i].contains(&cell))
                .collect();
            if gens.is_empty() || gens.len() > 64 {
                continue;
            }
            let mut solver = SubsetXorSolver::new(dim, gens.len());
            for &g in &gens {
                let v = cell_vector(pool.key(g), pool.checksums[g], &mut scratch);
                solver.add_generator(&v);
            }
            let target =
                cell_vector(table.cell_key_sum(cell), table.cell_check_sum(cell), &mut scratch);
            let SubsetSolution::Unique(subset) = solver.solve(&target) else {
                continue; // ambiguous or inconsistent: never guess
            };
            if subset.is_empty() {
                continue; // a non-empty cell is never explained by nothing
            }
            let members: Vec<usize> = subset.into_iter().map(|s| gens[s]).collect();
            let Some(resolved) = resolve_signs(&pool, &members, table.cell_count(cell)) else {
                continue;
            };
            for (member, sign) in resolved {
                let key = pool.key(member).to_vec();
                table.remove_rescued(&key, pool.checksums[member], sign);
                if sign > 0 {
                    result.positive.push(key);
                } else {
                    result.negative.push(key);
                }
                pool.used[member] = true;
            }
            progress = true;
        }

        table.peel_in_place(result);
        if table.is_empty() {
            break;
        }
        if !progress {
            break;
        }
    }

    if table.is_empty() {
        DECODE_RESCUES.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        RESCUE_FAILURES.fetch_add(1, Ordering::Relaxed);
        false
    }
}

/// Filter the caller's candidates down to keys whose cells are all non-empty,
/// deterministically (sorted by key bytes, deduplicated, capped), and load
/// them into the pool with known sign −1.
fn seed_pool(table: &Iblt, pool: &mut Pool, negative_candidates: &[&[u8]], cap: usize) {
    let mut plausible: Vec<&[u8]> = negative_candidates
        .iter()
        .copied()
        .filter(|key| {
            let cells = table.key_cells(key);
            cells.iter().all(|&c| !table.cell_is_empty(c))
        })
        .collect();
    // The caller may hand over an arbitrarily-ordered set (e.g. a HashSet
    // iterator); sort so the pool — and therefore the decode outcome — is
    // identical across processes and runs.
    plausible.sort_unstable();
    plausible.dedup();
    plausible.truncate(cap);
    for key in plausible {
        let cells = table.key_cells(key);
        pool.push(key, table.key_checksum(key), Some(-1), cells);
    }
}

/// Candidate-free discovery: Gaussian-reduce the residual cell vectors and
/// adopt any basis row that checksums as a single key (unknown sign).
fn discover_candidates(
    table: &Iblt,
    residual: &[usize],
    pool: &mut Pool,
    dim: usize,
    scratch: &mut Vec<u8>,
) {
    let kb = table.key_bytes();
    let mut solver = SubsetXorSolver::new(dim, residual.len());
    for &cell in residual {
        let v = cell_vector(table.cell_key_sum(cell), table.cell_check_sum(cell), scratch);
        solver.add_generator(&v);
    }
    let rows: Vec<BitVec> = solver.basis_rows().cloned().collect();
    for row in rows {
        let key = row.to_bytes(kb);
        let check = u64::from_le_bytes(row.to_bytes(kb + 8)[kb..].try_into().expect("8 bytes"));
        if table.key_checksum(&key) != check || pool.contains_key(&key) {
            continue;
        }
        let cells = table.key_cells(&key);
        if cells.iter().any(|&c| table.cell_is_empty(c)) {
            continue; // a present key cannot touch an empty cell
        }
        pool.push(&key, check, None, cells);
    }
}

/// Resolve the signs of `members` against the cell's count equation
/// `Σ sign = count`. Returns the members with concrete signs only when every
/// sign is forced; otherwise `None`.
fn resolve_signs(pool: &Pool, members: &[usize], count: i64) -> Option<Vec<(usize, i64)>> {
    let known: i64 = members.iter().filter_map(|&m| pool.signs[m]).sum();
    let unknown: Vec<usize> =
        members.iter().copied().filter(|&m| pool.signs[m].is_none()).collect();
    let rhs = count - known;
    let sign_of_unknowns = if unknown.is_empty() {
        if rhs != 0 {
            return None; // the known signs do not add up to the count
        }
        0
    } else if rhs == unknown.len() as i64 {
        1 // every unknown key is on the positive side
    } else if rhs == -(unknown.len() as i64) {
        -1 // every unknown key is on the negative side
    } else {
        return None; // mixed signs would not be forced: never guess
    };
    Some(members.iter().map(|&m| (m, pool.signs[m].unwrap_or(sign_of_unknowns))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::IbltConfig;
    use recon_base::rng::Xoshiro256;

    /// A subtracted table holding `d_pos` positive and `d_neg` negative keys on
    /// top of `n` shared (cancelled) ones, plus Bob's full key list (the
    /// candidate pool) and the ground-truth difference, sorted.
    fn diff_scenario(
        n: usize,
        d_pos: usize,
        d_neg: usize,
        cells: usize,
        cfg: &IbltConfig,
        seed: u64,
    ) -> (Iblt, Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut rng = Xoshiro256::new(seed);
        let mut next = || rng.next_u64() >> 1;
        let shared: Vec<u64> = (0..n).map(|_| next()).collect();
        let alice_extra: Vec<u64> = (0..d_pos).map(|_| next()).collect();
        let bob_extra: Vec<u64> = (0..d_neg).map(|_| next()).collect();
        let mut table = Iblt::with_cells(cells, cfg);
        for &x in shared.iter().chain(&alice_extra) {
            table.insert_u64(x);
        }
        let bob: Vec<u64> = shared.iter().chain(&bob_extra).copied().collect();
        for &x in &bob {
            table.delete_u64(x);
        }
        let mut pos = alice_extra;
        let mut neg = bob_extra;
        pos.sort_unstable();
        neg.sort_unstable();
        (table, pos, neg, bob)
    }

    #[test]
    fn rescue_saves_most_stalled_peels_and_counts_them() {
        // Size the table right at the peeling wall so a healthy fraction of
        // seeds stall, then check the rescue finishes them with the decoder's
        // own keys as candidates — and that what it recovers is exactly the
        // ground-truth difference, every time.
        if recon_base::config::peel_only_forced() {
            return; // the forced-peel-only CI leg disables the path under test
        }
        let mut stalled = 0u32;
        let mut saved = 0u32;
        for seed in 0..80u64 {
            let cfg = IbltConfig::for_u64_keys(seed ^ 0xD15C).with_hash_count(3);
            let peel_cfg = cfg.with_rescue(None);
            let (mut peel_table, _, _, _) = diff_scenario(300, 6, 18, 27, &peel_cfg, seed);
            if peel_table.decode_in_place().complete {
                continue;
            }
            stalled += 1;
            let (mut table, pos, neg, bob) = diff_scenario(300, 6, 18, 27, &cfg, seed);
            let rescues_before = decode_rescues();
            let decoded = table.decode_in_place_with_candidates_u64(bob.iter().copied());
            if !decoded.complete {
                continue;
            }
            saved += 1;
            assert!(table.is_empty(), "complete decode drains the table");
            assert!(decode_rescues() > rescues_before, "rescue counter must move");
            let mut got_pos = decoded.positive_u64();
            let mut got_neg = decoded.negative_u64();
            got_pos.sort_unstable();
            got_neg.sort_unstable();
            assert_eq!(got_pos, pos, "seed {seed}");
            assert_eq!(got_neg, neg, "seed {seed}");
        }
        assert!(stalled >= 10, "scenario must straddle the peeling wall, stalled {stalled}");
        assert!(saved * 10 >= stalled * 7, "rescue saved {saved}/{stalled} stalls");
    }

    #[test]
    fn hopeless_rescue_increments_failure_counter() {
        // Way more differences than cells, and no candidates: the rescue must
        // give up, report incomplete, and count the failure.
        if recon_base::config::peel_only_forced() {
            return; // the forced-peel-only CI leg disables the path under test
        }
        let cfg = IbltConfig::for_u64_keys(3).with_hash_count(3);
        let (mut table, _, _, _) = diff_scenario(50, 40, 0, 9, &cfg, 17);
        let failures_before = rescue_failures();
        let decoded = table.decode_in_place_with_candidates_u64(std::iter::empty());
        assert!(!decoded.complete);
        assert!(rescue_failures() > failures_before);
    }

    #[test]
    fn disabling_rescue_in_config_restores_pure_peeling() {
        // With `rescue: None` the candidates are never even materialized and a
        // stalled peel stays stalled (the per-table analogue of the
        // RECON_IBLT_FORCE_PEEL_ONLY process flag).
        let mut found_stall = false;
        for seed in 0..80u64 {
            let cfg = IbltConfig::for_u64_keys(seed ^ 0xD15C).with_hash_count(3).with_rescue(None);
            let (mut table, _, _, bob) = diff_scenario(300, 6, 18, 27, &cfg, seed);
            let reference = table.clone();
            let decoded = table.decode_in_place_with_candidates_u64(bob.iter().copied());
            let mut twin = reference.clone();
            let plain = twin.decode_in_place();
            assert_eq!(decoded.complete, plain.complete, "seed {seed}");
            if !plain.complete {
                found_stall = true;
            }
        }
        assert!(found_stall, "scenario must stall at least once for the test to bite");
    }

    #[test]
    fn sign_resolution_never_guesses() {
        let mut pool = Pool::new(8);
        pool.push(&[1; 8], 11, Some(-1), vec![0, 1, 2]);
        pool.push(&[2; 8], 22, None, vec![0, 3, 4]);
        pool.push(&[3; 8], 33, None, vec![0, 5, 6]);
        // Two unknowns summing with one known −1 to rhs +1: mixed signs would
        // be needed, which is not forced — must refuse.
        assert_eq!(resolve_signs(&pool, &[0, 1, 2], 0), None);
        // rhs = +2 forces both unknowns positive.
        let resolved = resolve_signs(&pool, &[0, 1, 2], 1).unwrap();
        assert_eq!(resolved, vec![(0, -1), (1, 1), (2, 1)]);
        // Known signs alone must match the count exactly.
        assert_eq!(resolve_signs(&pool, &[0], -1), Some(vec![(0, -1)]));
        assert_eq!(resolve_signs(&pool, &[0], 1), None);
    }
}
