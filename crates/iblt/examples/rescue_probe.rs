//! Monte Carlo calibration sweep for the tuned IBLT layout (not shipped wisdom:
//! run with --release; results feed the TUNED_LAYOUT table in table.rs).
use recon_base::rng::{split_seed, Xoshiro256};
use recon_iblt::{Iblt, IbltConfig};
use std::collections::HashSet;

fn main() {
    let trials = 400u64;
    for n_shared in [1000usize, 20000] {
        println!("--- shared set size {n_shared} ---");
        for d in [4usize, 8, 16, 32, 64, 128] {
            for (k, stash) in [(3usize, 3usize), (4, 3)] {
                for factor in [1.2f64, 1.35, 1.5, 1.7] {
                    let mut peel_ok = 0u64;
                    let mut resc_ok = 0u64;
                    for trial in 0..trials {
                        let seed = split_seed(0xCA11 + d as u64, trial);
                        let cfg = IbltConfig::for_u64_keys(seed)
                            .with_hash_count(k)
                            .with_cells_per_diff(factor)
                            .with_min_cells(16)
                            .with_stash_cells(stash);
                        let mut rng = Xoshiro256::new(split_seed(trial, d as u64));
                        let shared: Vec<u64> = (0..n_shared).map(|_| rng.next_u64()).collect();
                        let only_a: Vec<u64> = (0..d.div_ceil(2)).map(|_| rng.next_u64()).collect();
                        let only_b: Vec<u64> = (0..d / 2).map(|_| rng.next_u64()).collect();
                        let mut a = Iblt::with_expected_diff(d, &cfg);
                        for &x in shared.iter().chain(&only_a) {
                            a.insert_u64(x);
                        }
                        let mut b = Iblt::with_expected_diff(d, &cfg);
                        for &x in shared.iter().chain(&only_b) {
                            b.insert_u64(x);
                        }
                        let diff = a.subtract(&b).unwrap();

                        let mut tp = diff.clone();
                        tp.adopt_layout(&cfg.with_rescue(None)).unwrap();
                        if tp.decode_in_place().complete {
                            peel_ok += 1;
                        }

                        let mut tr = diff.clone();
                        let r = tr.decode_in_place_with_candidates_u64(
                            shared.iter().chain(&only_b).copied(),
                        );
                        if r.complete {
                            let pos: HashSet<u64> = r.positive_u64().into_iter().collect();
                            let neg: HashSet<u64> = r.negative_u64().into_iter().collect();
                            assert_eq!(pos, only_a.iter().copied().collect());
                            assert_eq!(neg, only_b.iter().copied().collect());
                            resc_ok += 1;
                        }
                    }
                    println!(
                        "d={d:4} k={k} stash={stash} f={factor}: peel {:5.1}%  rescue {:5.1}%",
                        100.0 * peel_ok as f64 / trials as f64,
                        100.0 * resc_ok as f64 / trials as f64
                    );
                }
            }
        }
    }
}
