//! # recon-store
//!
//! A persistent, incrementally-maintained sketch store and the long-lived
//! reconciliation daemon built on it.
//!
//! Every protocol in this workspace pays `O(n)` to build its IBLT and strata
//! sketches from the full key set before a single byte moves — at millions of
//! keys per replica, that *encode*, not the wire, dominates the cost of a
//! session. But every sketch here is a sum of per-element updates (XOR key
//! sums, signed counts, reversible hash folds), so maintenance is `O(k)` per
//! insert or delete while a rebuild is `O(n)`: exactly the asymmetry a
//! long-lived store exploits.
//!
//! * [`Replica`] — one key set plus its maintained sketches: an IBLT bank per
//!   ladder rung (difference bound), a [`StrataEstimator`] and an incremental
//!   set hash, all updated in place on mutation and **bit-identical** to a
//!   from-scratch build at every point (pinned by tests).
//! * [`SketchStore`] — a collection of named replicas over a pluggable
//!   [`StorageBackend`] ([`MemoryBackend`] or [`DirBackend`]): durable
//!   snapshots of the flat SoA cell banks plus a write-ahead mutation log,
//!   with torn-tail-tolerant replay so a crashed store recovers to the exact
//!   sketch a fresh rebuild of the surviving prefix would produce.
//! * [`StoreDaemon`] / [`StoreClient`] — the store wired into the reactor
//!   [`Server`](recon_runtime::Server) as a long-lived TCP daemon speaking a
//!   small framed control protocol (`Open`/`Insert`/`Delete`/`Reconcile`/
//!   `Snapshot`/`Stat`/`List`/`Close`), serving reconciliation sessions straight from
//!   the cached sketches: `O(d)` per session, never `O(n)`.
//!
//! Daemon-served sessions reproduce the byte-exact envelopes, outcomes and
//! `CommStats` of a cold [`SessionBuilder`](recon_protocol::SessionBuilder)
//! run over the same sets — the sketches are maintained, not approximated.
//!
//! [`StrataEstimator`]: recon_estimator::StrataEstimator

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod control;
pub mod daemon;
pub mod replica;
pub mod store;
pub mod wal;

pub use backend::{DirBackend, MemoryBackend, StorageBackend};
pub use client::{ReconcileReport, StoreClient};
pub use daemon::{StoreDaemon, StoreService};
pub use replica::{Replica, ReplicaParams};
pub use store::{ReplicaInfo, SketchStore, StoreConfig, StoreStat};
pub use wal::WalOp;
