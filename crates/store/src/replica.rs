//! One replica: a key set plus the sketches maintained for it under churn.
//!
//! A [`Replica`] keeps, next to its `HashSet<u64>` of keys:
//!
//! * one IBLT bank per **ladder rung** — a fixed menu of difference bounds
//!   (e.g. `[16, 64, 256]`); a session asking for bound `d` is served the
//!   smallest rung ≥ `d`,
//! * a [`StrataEstimator`] (A-side) for sizing unknown-`d` sessions, and
//! * an incremental whole-set hash ([`SetHasher`]).
//!
//! Every sketch is a commutative sum of per-element updates, so `insert` /
//! `remove` cost `O(k)` per bank and the maintained state is **bit-identical**
//! to a from-scratch build over the current keys — which is what lets the
//! daemon serve [`SetDigest`]s indistinguishable from
//! [`IbltSetProtocol::digest`] without ever paying its `O(n)`.

use recon_base::hash::SetHasher;
use recon_base::rng::split_seed;
use recon_base::wire::{read_uvarint, write_uvarint, Decode, Encode, WireError};
use recon_base::ReconError;
use recon_estimator::{L0Config, Side, StrataConfig, StrataEstimator};
use recon_iblt::Iblt;
use recon_protocol::{Amplification, SessionConfig};
use recon_set::{IbltSetProtocol, SetDigest};
use std::collections::HashSet;

use crate::wal::WalOp;

/// The public-coin parameters of a replica, fixed when it is first opened and
/// shared with every client that reconciles against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaParams {
    /// Session seed: clients run their Bob party with exactly this seed, so
    /// the daemon's cached digests line up with the client's decode.
    pub seed: u64,
    /// Ascending difference-bound rungs; one IBLT bank is maintained per rung.
    pub ladder: Vec<usize>,
    /// Replication budget for amplified sessions (attempt 0 is served from the
    /// cached bank; retries rebuild under fresh hash functions).
    pub max_attempts: u64,
}

impl ReplicaParams {
    /// Validate ladder shape: non-empty, strictly ascending, rungs ≥ 1.
    pub fn validate(&self) -> Result<(), ReconError> {
        let ascending = self.ladder.windows(2).all(|w| w[0] < w[1]);
        if self.ladder.is_empty() || self.ladder[0] == 0 || !ascending || self.max_attempts == 0 {
            return Err(ReconError::InvalidInput(format!("invalid replica params {self:?}")));
        }
        Ok(())
    }

    /// The per-attempt digest protocol — the same derivation chain as
    /// [`recon_set::session::iblt_known_alice`], so cached digests are
    /// byte-compatible with a cold session run under [`Self::session_config`].
    pub fn protocol_for_attempt(&self, attempt: u64) -> IbltSetProtocol {
        IbltSetProtocol::tuned(split_seed(self.seed, 0x2E0 + attempt))
    }

    /// The strata-estimator shape clients must build (B-side) for unknown-`d`
    /// reconciliation against this replica.
    pub fn strata_config(&self) -> StrataConfig {
        StrataConfig::default().with_seed(split_seed(self.seed, 0x57A))
    }

    /// Seed of the WAL record checksums.
    pub fn wal_seed(&self) -> u64 {
        split_seed(self.seed, 0x3A1)
    }

    /// The session configuration a client uses to run its Bob party — the same
    /// one a cold [`SessionBuilder`](recon_protocol::SessionBuilder) run would
    /// use, which is what makes daemon-served outcomes byte-identical.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            seed: self.seed,
            amplification: Amplification::replicate(self.max_attempts),
            estimator: L0Config::default(),
        }
    }

    /// The smallest ladder rung covering difference bound `d`, if any.
    pub fn rung_for(&self, d: usize) -> Option<usize> {
        self.ladder.iter().copied().find(|&rung| rung >= d.max(1))
    }
}

impl Encode for ReplicaParams {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seed.encode(buf);
        write_uvarint(buf, self.max_attempts);
        self.ladder.encode(buf);
    }
}

impl Decode for ReplicaParams {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let seed = u64::decode(buf)?;
        let max_attempts = read_uvarint(buf)?;
        let ladder = Vec::<usize>::decode(buf)?;
        let params = ReplicaParams { seed, ladder, max_attempts };
        params.validate().map_err(|_| WireError::Invalid("replica params"))?;
        Ok(params)
    }
}

/// Snapshot format version.
const SNAPSHOT_VERSION: u8 = 1;

/// A key set with incrementally maintained sketches. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Replica {
    params: ReplicaParams,
    keys: HashSet<u64>,
    /// One bank per ladder rung, same order as `params.ladder`.
    banks: Vec<Iblt>,
    /// A-side strata estimator over the current keys.
    strata: StrataEstimator,
    /// Incremental state of the attempt-0 digest's whole-set hash.
    set_hash: SetHasher,
}

impl Replica {
    /// An empty replica with the given parameters.
    pub fn new(params: ReplicaParams) -> Result<Self, ReconError> {
        params.validate()?;
        let protocol = params.protocol_for_attempt(0);
        let banks = params
            .ladder
            .iter()
            .map(|&rung| Iblt::with_expected_diff(rung, protocol.iblt_config()))
            .collect();
        let strata = StrataEstimator::new(&params.strata_config());
        let set_hash = SetHasher::new(protocol.set_hash_seed());
        Ok(Self { params, keys: HashSet::new(), banks, strata, set_hash })
    }

    /// The replica's parameters.
    pub fn params(&self) -> &ReplicaParams {
        &self.params
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the replica holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The current key set.
    pub fn keys(&self) -> &HashSet<u64> {
        &self.keys
    }

    /// The maintained A-side strata estimator.
    pub fn strata(&self) -> &StrataEstimator {
        &self.strata
    }

    /// The current whole-set hash (attempt-0 digest seed).
    pub fn set_hash(&self) -> u64 {
        self.set_hash.finish()
    }

    /// Insert `key`, updating every sketch in `O(k)` per bank. Returns `false`
    /// (and touches nothing) if the key was already present — set semantics,
    /// so the incremental state always equals a fresh build.
    pub fn insert(&mut self, key: u64) -> bool {
        if !self.keys.insert(key) {
            return false;
        }
        for bank in &mut self.banks {
            bank.insert_u64(key);
        }
        self.strata.update(key, Side::A);
        self.set_hash.insert(key);
        true
    }

    /// Remove `key`; `false` (no-op) if it was absent.
    pub fn remove(&mut self, key: u64) -> bool {
        if !self.keys.remove(&key) {
            return false;
        }
        for bank in &mut self.banks {
            bank.delete_u64(key);
        }
        self.strata.remove(key, Side::A);
        self.set_hash.remove(key);
        true
    }

    /// Apply a logged mutation (replay path). Returns whether it changed the
    /// set — always `true` for a log produced by this store, since no-op
    /// mutations are never logged.
    pub fn apply(&mut self, op: WalOp) -> bool {
        match op {
            WalOp::Insert(key) => self.insert(key),
            WalOp::Delete(key) => self.remove(key),
        }
    }

    /// Serve the digest for difference bound `d` from the maintained banks:
    /// `O(d)` (one bank clone), no rebuild. Returns the effective bound (the
    /// rung) alongside; `None` if `d` exceeds the ladder.
    pub fn digest(&self, d: usize) -> Option<(usize, SetDigest)> {
        let rung = self.params.rung_for(d)?;
        let idx = self.params.ladder.iter().position(|&r| r == rung).expect("rung in ladder");
        let digest = SetDigest {
            iblt: self.banks[idx].clone(),
            set_hash: self.set_hash.finish(),
            cardinality: self.keys.len() as u64,
        };
        Some((rung, digest))
    }

    /// Build the digest for retry `attempt` (≥ 1) from scratch under that
    /// attempt's fresh hash functions — the rare amplification path; counted
    /// by [`recon_set::full_digest_builds`].
    pub fn rebuild_digest(&self, d: usize, attempt: u64) -> SetDigest {
        self.params.protocol_for_attempt(attempt).digest(&self.keys, d)
    }

    /// Estimate the difference against a client's B-side estimator and pick
    /// the effective bound: the smallest rung covering twice the estimate
    /// (the same headroom as [`recon_set::session::unknown_alice`]), falling
    /// back to the largest rung when the estimate exceeds the ladder.
    pub fn estimate_bound(&self, client: &StrataEstimator) -> Result<(usize, usize), ReconError> {
        let estimate = self.strata.merge(client)?.estimate();
        let bound = (estimate * 2).max(8);
        let rung =
            self.params.rung_for(bound).unwrap_or(*self.params.ladder.last().expect("non-empty"));
        Ok((estimate, rung))
    }

    /// Serialize the full replica state: parameters, sorted keys, the
    /// incremental hash state, the strata estimator and every bank as a
    /// contiguous SoA dump ([`Iblt::encode_bank`]).
    pub fn encode_snapshot(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.push(SNAPSHOT_VERSION);
        self.params.encode(&mut buf);
        let mut keys: Vec<u64> = self.keys.iter().copied().collect();
        keys.sort_unstable();
        write_uvarint(&mut buf, keys.len() as u64);
        for key in keys {
            buf.extend_from_slice(&key.to_le_bytes());
        }
        let (sum, xor, count) = self.set_hash.state();
        sum.encode(&mut buf);
        xor.encode(&mut buf);
        count.encode(&mut buf);
        self.strata.encode(&mut buf);
        for bank in &self.banks {
            bank.encode_bank(&mut buf);
        }
        buf
    }

    /// Load a snapshot produced by [`Replica::encode_snapshot`]. The banks are
    /// loaded straight from their SoA dumps — no per-cell parsing, no rebuild.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<Self, ReconError> {
        let mut buf = bytes;
        let version = u8::decode(&mut buf).map_err(ReconError::Wire)?;
        if version != SNAPSHOT_VERSION {
            return Err(ReconError::InvalidInput(format!("unknown snapshot version {version}")));
        }
        let params = ReplicaParams::decode(&mut buf).map_err(ReconError::Wire)?;
        let n = read_uvarint(&mut buf).map_err(ReconError::Wire)? as usize;
        let mut keys = HashSet::with_capacity(n);
        for _ in 0..n {
            keys.insert(u64::decode(&mut buf).map_err(ReconError::Wire)?);
        }
        if keys.len() != n {
            return Err(ReconError::InvalidInput("snapshot key list has duplicates".into()));
        }
        let sum = u64::decode(&mut buf).map_err(ReconError::Wire)?;
        let xor = u64::decode(&mut buf).map_err(ReconError::Wire)?;
        let count = u64::decode(&mut buf).map_err(ReconError::Wire)?;
        let protocol = params.protocol_for_attempt(0);
        let set_hash = SetHasher::from_state(protocol.set_hash_seed(), (sum, xor, count));
        let strata = StrataEstimator::decode(&mut buf).map_err(ReconError::Wire)?;
        let mut banks = Vec::with_capacity(params.ladder.len());
        for _ in &params.ladder {
            let mut bank = Iblt::decode_bank(&mut buf).map_err(ReconError::Wire)?;
            // SoA dumps carry no decode-side metadata; restore the protocol's
            // stash split so replayed mutations land in the same cells a fresh
            // build would use.
            bank.adopt_layout(protocol.iblt_config())?;
            banks.push(bank);
        }
        if !buf.is_empty() {
            return Err(ReconError::InvalidInput("trailing bytes in snapshot".into()));
        }
        Ok(Self { params, keys, banks, strata, set_hash })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_base::rng::Xoshiro256;

    fn params() -> ReplicaParams {
        ReplicaParams { seed: 0xC0FFEE, ladder: vec![8, 32, 128], max_attempts: 4 }
    }

    fn churned_replica(n: usize, seed: u64) -> Replica {
        let mut replica = Replica::new(params()).unwrap();
        let mut rng = Xoshiro256::new(seed);
        let mut live: Vec<u64> = Vec::new();
        for i in 0..n {
            let key = rng.next_below(1 << 48);
            if replica.insert(key) {
                live.push(key);
            }
            if i % 4 == 3 && !live.is_empty() {
                let victim = live.remove((rng.next_u64() as usize) % live.len());
                assert!(replica.remove(victim));
            }
        }
        replica
    }

    #[test]
    fn params_validation() {
        assert!(params().validate().is_ok());
        for bad in [
            ReplicaParams { seed: 1, ladder: vec![], max_attempts: 4 },
            ReplicaParams { seed: 1, ladder: vec![0, 4], max_attempts: 4 },
            ReplicaParams { seed: 1, ladder: vec![8, 8], max_attempts: 4 },
            ReplicaParams { seed: 1, ladder: vec![32, 8], max_attempts: 4 },
            ReplicaParams { seed: 1, ladder: vec![8], max_attempts: 0 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
            assert!(ReplicaParams::from_bytes(&bad.to_bytes()).is_err(), "{bad:?}");
        }
        let good = params();
        assert_eq!(ReplicaParams::from_bytes(&good.to_bytes()).unwrap(), good);
    }

    #[test]
    fn cached_digest_is_byte_identical_to_full_build() {
        // The core invariant of the whole crate: after arbitrary churn, the
        // maintained bank serves exactly the bytes IbltSetProtocol::digest
        // would build from scratch — at every rung.
        let replica = churned_replica(500, 3);
        let protocol = replica.params().protocol_for_attempt(0);
        for &rung in &replica.params().ladder.clone() {
            let (d_eff, cached) = replica.digest(rung).unwrap();
            assert_eq!(d_eff, rung);
            let fresh = protocol.digest(replica.keys(), rung);
            assert_eq!(cached.to_bytes(), fresh.to_bytes(), "rung {rung}");
        }
        // Requests between rungs round up.
        let (d_eff, _) = replica.digest(9).unwrap();
        assert_eq!(d_eff, 32);
        assert!(replica.digest(1000).is_none());
    }

    #[test]
    fn rebuild_digest_matches_session_retry_protocol() {
        let replica = churned_replica(200, 5);
        let fresh = replica.params().protocol_for_attempt(2).digest(replica.keys(), 32);
        assert_eq!(replica.rebuild_digest(32, 2).to_bytes(), fresh.to_bytes());
    }

    #[test]
    fn maintained_strata_matches_fresh_build() {
        let replica = churned_replica(400, 7);
        let mut fresh = StrataEstimator::new(&replica.params().strata_config());
        for &key in replica.keys() {
            fresh.update(key, Side::A);
        }
        assert_eq!(replica.strata(), &fresh);
    }

    #[test]
    fn duplicate_insert_and_missing_remove_are_no_ops() {
        let mut replica = Replica::new(params()).unwrap();
        assert!(replica.insert(5));
        let before = replica.clone();
        assert!(!replica.insert(5));
        assert!(!replica.remove(99));
        assert_eq!(replica, before);
        assert!(replica.remove(5));
        assert_eq!(replica, Replica::new(params()).unwrap());
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let replica = churned_replica(300, 11);
        let bytes = replica.encode_snapshot();
        let restored = Replica::decode_snapshot(&bytes).unwrap();
        assert_eq!(restored, replica);
        // And keeps serving identical digests.
        let (_, a) = replica.digest(8).unwrap();
        let (_, b) = restored.digest(8).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn snapshot_rejects_garbage_and_trailing_bytes() {
        let replica = churned_replica(20, 13);
        let mut bytes = replica.encode_snapshot();
        assert!(Replica::decode_snapshot(&bytes[..bytes.len() / 2]).is_err());
        bytes.push(0);
        assert!(Replica::decode_snapshot(&bytes).is_err());
        assert!(Replica::decode_snapshot(&[9, 9, 9]).is_err());
    }

    #[test]
    fn estimate_bound_picks_a_covering_rung() {
        let mut replica = Replica::new(params()).unwrap();
        let mut client = StrataEstimator::new(&replica.params().strata_config());
        for x in 0..2000u64 {
            replica.insert(x);
            client.update(x, Side::B);
        }
        // 10 extra keys on the replica side only.
        for x in 5000..5010u64 {
            replica.insert(x);
        }
        let (estimate, rung) = replica.estimate_bound(&client).unwrap();
        assert!((3..=30).contains(&estimate), "estimate {estimate}");
        assert!(replica.params().ladder.contains(&rung));
        assert!(rung >= (estimate * 2).clamp(8, 128) || rung == 128);
    }
}
