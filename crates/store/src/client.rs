//! The daemon's client: a blocking facade over one [`TcpEndpoint`] driven by
//! [`drive_endpoint`].
//!
//! A [`StoreClient`] multiplexes everything over a single connection: the
//! control session ([`CONTROL_SESSION`], client side `Role::Bob`) for
//! commands, plus one fresh data session per [`StoreClient::reconcile`] call
//! running a completely ordinary [`iblt_known_bob`] party. The client
//! registers its Bob **before** sending the `Reconcile` request — the
//! endpoint multiplexer treats an envelope for an unregistered session as a
//! transport error, and the daemon's digest can arrive in the same readiness
//! event as the control response.
//!
//! [`iblt_known_bob`]: recon_set::session::iblt_known_bob

use recon_base::comm::CommStats;
use recon_base::{ReconError, RetryPolicy};
use recon_estimator::{Side, StrataEstimator};
use recon_protocol::{ControlFrame, Envelope, Party, Role, SessionId, Step, CONTROL_SESSION};
use recon_runtime::{connect_endpoint, drive_endpoint, ReactorConfig, TcpEndpoint};
use recon_set::session::iblt_known_bob;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use crate::control::{
    ErrorResp, ListResp, MutateReq, MutateResp, OpenReq, OpenResp, ReconcileReq, ReconcileResp,
    SnapshotReq, SnapshotResp, StatReq, StatResp, OP_CLOSE, OP_DELETE, OP_ERROR, OP_INSERT,
    OP_LIST, OP_OPEN, OP_RECONCILE, OP_SNAPSHOT, OP_STAT,
};
use crate::replica::ReplicaParams;
use crate::store::{ReplicaInfo, StoreStat};

/// What one daemon-served reconciliation produced.
#[derive(Debug, Clone)]
pub struct ReconcileReport {
    /// The replica's full key set, recovered by the local Bob party.
    pub recovered: HashSet<u64>,
    /// Measured communication of the data session (control traffic excluded).
    pub stats: CommStats,
    /// Effective difference bound served (the ladder rung).
    pub d: u64,
    /// The strata estimate, when the daemon sized the session.
    pub estimated: Option<u64>,
}

#[derive(Default)]
struct ClientShared {
    /// Responses by request id (services may answer out of order).
    inbox: HashMap<u64, ControlFrame>,
    /// Requests waiting for the endpoint pump.
    outbox: VecDeque<Envelope>,
}

/// Client side of the control session: pumps queued requests out, files
/// responses into the shared inbox, and completes on the `Close` response.
struct ClientControl {
    shared: Arc<Mutex<ClientShared>>,
}

impl Party for ClientControl {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.shared.lock().expect("client lock").outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<()>, ReconError> {
        let frame = ControlFrame::from_envelope(&envelope)?;
        let closing = frame.op == OP_CLOSE;
        self.shared.lock().expect("client lock").inbox.insert(frame.request_id, frame);
        if closing {
            Ok(Step::Done(()))
        } else {
            Ok(Step::Continue)
        }
    }
}

/// A connected store-daemon client. See the module docs.
pub struct StoreClient {
    endpoint: TcpEndpoint,
    config: ReactorConfig,
    shared: Arc<Mutex<ClientShared>>,
    /// Resolved daemon address, kept for [`StoreClient::reconnect`].
    addrs: Vec<SocketAddr>,
    next_request: u64,
    next_session: SessionId,
    /// Parameters of replicas opened through this client, by name.
    params: HashMap<String, ReplicaParams>,
}

/// Dial the daemon and install a fresh control session.
fn dial(addrs: &[SocketAddr]) -> Result<(TcpEndpoint, Arc<Mutex<ClientShared>>), ReconError> {
    let mut endpoint = connect_endpoint(addrs)?;
    let shared = Arc::new(Mutex::new(ClientShared::default()));
    endpoint.register(CONTROL_SESSION, Role::Bob, ClientControl { shared: Arc::clone(&shared) })?;
    Ok((endpoint, shared))
}

impl StoreClient {
    /// Connect to a daemon at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ReconError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ReconError::Transport(format!("resolve addr: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ReconError::Transport("connect: address resolved to nothing".into()));
        }
        let (endpoint, shared) = dial(&addrs)?;
        Ok(Self {
            endpoint,
            config: ReactorConfig::default(),
            shared,
            addrs,
            next_request: 1,
            next_session: CONTROL_SESSION + 1,
            params: HashMap::new(),
        })
    }

    /// Set the recovery policy. Every command (and [`StoreClient::reconcile`])
    /// re-runs on a retryable failure ([`ReconError::is_retryable`]: lost
    /// connections, corrupt frames, stuck or timed-out sessions), dialing the
    /// daemon again between attempts; the policy's `attempt_deadline`, when
    /// set, bounds each attempt. The default policy is [`RetryPolicy::none`]:
    /// fail on the first error.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.config.retry = policy;
    }

    /// Drop the connection and dial the daemon again with a fresh control
    /// session. Cached replica parameters survive; in-flight requests and
    /// unharvested sessions are lost, and session ids restart (they are
    /// per-connection on the daemon).
    pub fn reconnect(&mut self) -> Result<(), ReconError> {
        let (endpoint, shared) = dial(&self.addrs)?;
        self.endpoint = endpoint;
        self.shared = shared;
        self.next_session = CONTROL_SESSION + 1;
        Ok(())
    }

    /// Queue a request frame; returns its request id.
    fn send(&mut self, op: u16, body: &impl recon_base::wire::Encode) -> u64 {
        let request_id = self.next_request;
        self.next_request += 1;
        let frame = ControlFrame::new(request_id, op, body);
        self.shared
            .lock()
            .expect("client lock")
            .outbox
            .push_back(frame.request_envelope("control request"));
        request_id
    }

    /// Drive the endpoint until the response to `request_id` arrives, mapping
    /// an `OP_ERROR` response to `Err`.
    fn wait(&mut self, request_id: u64) -> Result<ControlFrame, ReconError> {
        let shared = Arc::clone(&self.shared);
        drive_endpoint(&mut self.endpoint, &self.config, |_| {
            Ok(shared.lock().expect("client lock").inbox.contains_key(&request_id))
        })?;
        let frame = self
            .shared
            .lock()
            .expect("client lock")
            .inbox
            .remove(&request_id)
            .expect("wait returned with the response present");
        check_error(frame)
    }

    fn request(
        &mut self,
        op: u16,
        body: &impl recon_base::wire::Encode,
    ) -> Result<ControlFrame, ReconError> {
        let policy = self.config.retry;
        recon_base::run_with_retry(&policy, |attempt| {
            if attempt > 0 {
                self.reconnect()?;
            }
            let request_id = self.send(op, body);
            self.wait(request_id)
        })
    }

    /// Open (creating if absent) replica `name`, returning — and caching —
    /// its parameters.
    pub fn open(&mut self, name: &str) -> Result<ReplicaParams, ReconError> {
        self.open_with(name, true)
    }

    fn open_with(&mut self, name: &str, create: bool) -> Result<ReplicaParams, ReconError> {
        let resp: OpenResp =
            self.request(OP_OPEN, &OpenReq { name: name.to_string(), create })?.decode_payload()?;
        self.params.insert(name.to_string(), resp.params.clone());
        Ok(resp.params)
    }

    /// Insert `keys` into replica `name`; returns `(applied, cardinality)`.
    pub fn insert(&mut self, name: &str, keys: &[u64]) -> Result<(u64, u64), ReconError> {
        let req = MutateReq { name: name.to_string(), keys: keys.to_vec() };
        let resp: MutateResp = self.request(OP_INSERT, &req)?.decode_payload()?;
        Ok((resp.applied, resp.total))
    }

    /// Delete `keys` from replica `name`; returns `(applied, cardinality)`.
    pub fn delete(&mut self, name: &str, keys: &[u64]) -> Result<(u64, u64), ReconError> {
        let req = MutateReq { name: name.to_string(), keys: keys.to_vec() };
        let resp: MutateResp = self.request(OP_DELETE, &req)?.decode_payload()?;
        Ok((resp.applied, resp.total))
    }

    /// Snapshot replica `name`; returns the snapshot size in bytes.
    pub fn snapshot(&mut self, name: &str) -> Result<u64, ReconError> {
        let resp: SnapshotResp =
            self.request(OP_SNAPSHOT, &SnapshotReq { name: name.to_string() })?.decode_payload()?;
        Ok(resp.bytes)
    }

    /// Enumerate the daemon's replicas (name, key count, set hash), sorted by
    /// name — discovery for hubs and operators instead of guessing names.
    pub fn list(&mut self) -> Result<Vec<ReplicaInfo>, ReconError> {
        let resp: ListResp = self.request(OP_LIST, &())?.decode_payload()?;
        Ok(resp.replicas)
    }

    /// Statistics for replica `name`.
    pub fn stat(&mut self, name: &str) -> Result<StoreStat, ReconError> {
        let resp: StatResp =
            self.request(OP_STAT, &StatReq { name: name.to_string() })?.decode_payload()?;
        Ok(resp.stat)
    }

    /// Reconcile `local` against replica `name`: recover the replica's full
    /// key set from a daemon-served session. With `d_bound = None` the client
    /// builds a strata estimator over `local` and lets the daemon size the
    /// session.
    ///
    /// Under a non-trivial [`StoreClient::set_retry_policy`], a retryable
    /// failure reconnects and re-runs the whole exchange with a fresh session
    /// and a fresh local party — sessions are stateful and cannot resume
    /// mid-protocol, so recovery is re-execution.
    pub fn reconcile(
        &mut self,
        name: &str,
        local: &HashSet<u64>,
        d_bound: Option<u64>,
    ) -> Result<ReconcileReport, ReconError> {
        let policy = self.config.retry;
        recon_base::run_with_retry(&policy, |attempt| {
            if attempt > 0 {
                self.reconnect()?;
            }
            self.reconcile_once(name, local, d_bound)
        })
    }

    /// One reconciliation attempt on the current connection.
    fn reconcile_once(
        &mut self,
        name: &str,
        local: &HashSet<u64>,
        d_bound: Option<u64>,
    ) -> Result<ReconcileReport, ReconError> {
        // Fetch-without-create: reconciling must never conjure an empty
        // replica out of a typo'd name.
        let params = match self.params.get(name) {
            Some(params) => params.clone(),
            None => self.open_with(name, false)?,
        };
        let session = self.next_session;
        self.next_session += 1;

        // Register Bob before the request leaves: the daemon's digest may
        // arrive in the same readiness event as the control response.
        let bob = iblt_known_bob(local, &params.session_config());
        self.endpoint.register(session, Role::Bob, bob)?;

        let estimator = match d_bound {
            Some(_) => None,
            None => {
                let mut estimator = StrataEstimator::new(&params.strata_config());
                for &x in local {
                    estimator.update(x, Side::B);
                }
                Some(estimator)
            }
        };
        let request_id = self.send(
            OP_RECONCILE,
            &ReconcileReq { name: name.to_string(), session, d_bound, estimator },
        );

        let shared = Arc::clone(&self.shared);
        let mut outcome = None;
        let drove = drive_endpoint(&mut self.endpoint, &self.config, |endpoint| {
            if outcome.is_none() {
                if let Some(done) = endpoint.take_outcome::<HashSet<u64>>(session) {
                    outcome = Some(done);
                }
            }
            let inbox = &shared.lock().expect("client lock").inbox;
            match inbox.get(&request_id) {
                // An error response means no Alice was registered; stop waiting.
                Some(frame) => Ok(frame.op == OP_ERROR || outcome.is_some()),
                None => Ok(false),
            }
        });
        let frame = self.shared.lock().expect("client lock").inbox.remove(&request_id);
        drove?;
        let frame = check_error(frame.expect("drive returned with the response present"))
            .inspect_err(|_| {
                // The daemon refused: retire the never-started Bob session.
                let _ = self.endpoint.close(session);
            })?;
        let resp: ReconcileResp = frame.decode_payload()?;
        let outcome = outcome.expect("outcome present when drive finished")?;
        Ok(ReconcileReport {
            recovered: outcome.recovered,
            stats: outcome.stats,
            d: resp.d,
            estimated: resp.estimated,
        })
    }

    /// Close the control session gracefully and drain the connection.
    pub fn close(mut self) -> Result<(), ReconError> {
        self.send(OP_CLOSE, &());
        let mut closed = false;
        drive_endpoint(&mut self.endpoint, &self.config, |endpoint| {
            if !closed {
                if let Some(outcome) = endpoint.take_outcome::<()>(CONTROL_SESSION) {
                    outcome?;
                    closed = true;
                }
            }
            Ok(closed && !endpoint.is_write_blocked())
        })
    }
}

fn check_error(frame: ControlFrame) -> Result<ControlFrame, ReconError> {
    if frame.op == OP_ERROR {
        let err: ErrorResp = frame.decode_payload()?;
        return Err(ReconError::InvalidInput(format!("daemon error: {}", err.message)));
    }
    Ok(frame)
}
