//! The daemon's control-channel vocabulary: opcodes and request/response
//! bodies carried in [`ControlFrame`](recon_protocol::ControlFrame) payloads.
//!
//! Every request is answered exactly once with the matching response body, or
//! with [`OP_ERROR`] + [`ErrorResp`] (same `request_id`) when the operation
//! fails; a failed operation never tears down the control session.
//!
//! Replica names travel as length-prefixed UTF-8 and are re-validated by the
//! store on arrival, so a hostile client cannot smuggle a path or a reserved
//! suffix through the wire.

use recon_base::wire::{read_length_prefixed, write_length_prefixed, Decode, Encode, WireError};
use recon_estimator::StrataEstimator;
use recon_protocol::SessionId;

use crate::replica::ReplicaParams;
use crate::store::{ReplicaInfo, StoreStat};

/// Open (creating if absent) a replica. Body: [`OpenReq`] → [`OpenResp`].
pub const OP_OPEN: u16 = 1;
/// Insert keys. Body: [`MutateReq`] → [`MutateResp`].
pub const OP_INSERT: u16 = 2;
/// Delete keys. Body: [`MutateReq`] → [`MutateResp`].
pub const OP_DELETE: u16 = 3;
/// Start a reconciliation session served from cached sketches.
/// Body: [`ReconcileReq`] → [`ReconcileResp`].
pub const OP_RECONCILE: u16 = 4;
/// Snapshot a replica and reset its WAL. Body: [`SnapshotReq`] → [`SnapshotResp`].
pub const OP_SNAPSHOT: u16 = 5;
/// Read replica statistics. Body: [`StatReq`] → [`StatResp`].
pub const OP_STAT: u16 = 6;
/// Close the control session gracefully. Body: `()` → `()`.
pub const OP_CLOSE: u16 = 7;
/// Enumerate replicas (name, key count, set hash). Body: `()` → [`ListResp`].
pub const OP_LIST: u16 = 8;
/// Response opcode for a failed request. Body: [`ErrorResp`].
pub const OP_ERROR: u16 = 0xFFFF;

fn encode_name(buf: &mut Vec<u8>, name: &str) {
    write_length_prefixed(buf, name.as_bytes());
}

fn decode_name(buf: &mut &[u8]) -> Result<String, WireError> {
    let bytes = read_length_prefixed(buf)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("replica name not UTF-8"))
}

/// Body of [`OP_OPEN`]: the replica to open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenReq {
    /// Replica name.
    pub name: String,
    /// Create the replica if absent; with `false`, an unknown name is an
    /// error — how a client fetches parameters without side effects.
    pub create: bool,
}

impl Encode for OpenReq {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_name(buf, &self.name);
        self.create.encode(buf);
    }
}

impl Decode for OpenReq {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { name: decode_name(buf)?, create: bool::decode(buf)? })
    }
}

/// Response to [`OP_OPEN`]: the replica's public-coin parameters, which the
/// client needs to run byte-compatible Bob parties and estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenResp {
    /// The opened replica's parameters.
    pub params: ReplicaParams,
}

impl Encode for OpenResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.params.encode(buf);
    }
}

impl Decode for OpenResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { params: ReplicaParams::decode(buf)? })
    }
}

/// Body of [`OP_INSERT`] / [`OP_DELETE`]: keys to apply to a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateReq {
    /// Replica name.
    pub name: String,
    /// Keys to insert or delete (duplicates / no-ops are skipped).
    pub keys: Vec<u64>,
}

impl Encode for MutateReq {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_name(buf, &self.name);
        self.keys.encode(buf);
    }
}

impl Decode for MutateReq {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { name: decode_name(buf)?, keys: Vec::decode(buf)? })
    }
}

/// Response to a mutation: how many keys actually changed the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateResp {
    /// Mutations applied (no-ops excluded).
    pub applied: u64,
    /// Replica cardinality after the batch.
    pub total: u64,
}

impl Encode for MutateResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.applied.encode(buf);
        self.total.encode(buf);
    }
}

impl Decode for MutateResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { applied: u64::decode(buf)?, total: u64::decode(buf)? })
    }
}

/// Body of [`OP_RECONCILE`]: ask the daemon to serve an Alice party for
/// `name` on data session `session` (client registers its Bob first).
///
/// With `d_bound = Some(d)` the daemon serves the smallest ladder rung ≥ `d`.
/// With `d_bound = None` it sizes the session by merging `estimator` (the
/// client's B-side strata estimator, required in that case) with its own
/// maintained A-side.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconcileReq {
    /// Replica name.
    pub name: String,
    /// Data session the client has registered its Bob party on. Must not be
    /// the control session.
    pub session: SessionId,
    /// Explicit difference bound, or `None` to estimate.
    pub d_bound: Option<u64>,
    /// Client-side strata estimator (required when `d_bound` is `None`),
    /// built with the replica's [`ReplicaParams::strata_config`].
    pub estimator: Option<StrataEstimator>,
}

impl Encode for ReconcileReq {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_name(buf, &self.name);
        self.session.encode(buf);
        self.d_bound.encode(buf);
        self.estimator.encode(buf);
    }
}

impl Decode for ReconcileReq {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self {
            name: decode_name(buf)?,
            session: SessionId::decode(buf)?,
            d_bound: Option::decode(buf)?,
            estimator: Option::decode(buf)?,
        })
    }
}

/// Response to [`OP_RECONCILE`]: the daemon has registered its Alice party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileResp {
    /// Echo of the data session id.
    pub session: SessionId,
    /// Effective difference bound (the ladder rung being served).
    pub d: u64,
    /// The merged strata estimate, when the daemon sized the session.
    pub estimated: Option<u64>,
}

impl Encode for ReconcileResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.session.encode(buf);
        self.d.encode(buf);
        self.estimated.encode(buf);
    }
}

impl Decode for ReconcileResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self {
            session: SessionId::decode(buf)?,
            d: u64::decode(buf)?,
            estimated: Option::decode(buf)?,
        })
    }
}

/// Body of [`OP_SNAPSHOT`]: the replica to snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotReq {
    /// Replica name.
    pub name: String,
}

impl Encode for SnapshotReq {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_name(buf, &self.name);
    }
}

impl Decode for SnapshotReq {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { name: decode_name(buf)? })
    }
}

/// Response to [`OP_SNAPSHOT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotResp {
    /// Size of the snapshot written, in bytes.
    pub bytes: u64,
}

impl Encode for SnapshotResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.bytes.encode(buf);
    }
}

impl Decode for SnapshotResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { bytes: u64::decode(buf)? })
    }
}

/// Body of [`OP_STAT`]: the replica to inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatReq {
    /// Replica name.
    pub name: String,
}

impl Encode for StatReq {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_name(buf, &self.name);
    }
}

impl Decode for StatReq {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { name: decode_name(buf)? })
    }
}

/// Response to [`OP_STAT`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatResp {
    /// The replica's current statistics.
    pub stat: StoreStat,
}

impl Encode for StatResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.stat.cardinality.encode(buf);
        self.stat.set_hash.encode(buf);
        self.stat.ladder.encode(buf);
        self.stat.wal_records.encode(buf);
    }
}

impl Decode for StatResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self {
            stat: StoreStat {
                cardinality: u64::decode(buf)?,
                set_hash: u64::decode(buf)?,
                ladder: Vec::decode(buf)?,
                wal_records: u64::decode(buf)?,
            },
        })
    }
}

/// Response to [`OP_LIST`]: every replica the store holds, sorted by name —
/// how a hub or operator discovers replicas instead of guessing names, and
/// compares convergence state via the incremental set hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListResp {
    /// One row per replica, sorted by name.
    pub replicas: Vec<ReplicaInfo>,
}

impl Encode for ListResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.replicas.encode(buf);
    }
}

impl Decode for ListResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self { replicas: Vec::decode(buf)? })
    }
}

impl Encode for ReplicaInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_name(buf, &self.name);
        self.cardinality.encode(buf);
        self.set_hash.encode(buf);
    }
}

impl Decode for ReplicaInfo {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Self {
            name: decode_name(buf)?,
            cardinality: u64::decode(buf)?,
            set_hash: u64::decode(buf)?,
        })
    }
}

/// Body of an [`OP_ERROR`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResp {
    /// Human-readable failure description.
    pub message: String,
}

impl Encode for ErrorResp {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_length_prefixed(buf, self.message.as_bytes());
    }
}

impl Decode for ErrorResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = read_length_prefixed(buf)?;
        let message = String::from_utf8_lossy(bytes).into_owned();
        Ok(Self { message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recon_estimator::{Side, StrataConfig};

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        assert_eq!(T::from_bytes(&value.to_bytes()).unwrap(), value);
    }

    #[test]
    fn bodies_roundtrip() {
        roundtrip(OpenReq { name: "alpha".into(), create: true });
        roundtrip(OpenReq { name: "alpha".into(), create: false });
        roundtrip(OpenResp {
            params: ReplicaParams { seed: 9, ladder: vec![8, 64], max_attempts: 3 },
        });
        roundtrip(MutateReq { name: "a".into(), keys: vec![1, u64::MAX, 0] });
        roundtrip(MutateResp { applied: 2, total: 10 });
        let mut estimator = StrataEstimator::new(&StrataConfig::default().with_seed(5));
        estimator.update(77, Side::B);
        roundtrip(ReconcileReq {
            name: "a".into(),
            session: 3,
            d_bound: None,
            estimator: Some(estimator),
        });
        roundtrip(ReconcileReq {
            name: "a".into(),
            session: 3,
            d_bound: Some(32),
            estimator: None,
        });
        roundtrip(ReconcileResp { session: 3, d: 64, estimated: Some(21) });
        roundtrip(SnapshotReq { name: "a".into() });
        roundtrip(SnapshotResp { bytes: 4096 });
        roundtrip(StatReq { name: "a".into() });
        roundtrip(ListResp { replicas: vec![] });
        roundtrip(ListResp {
            replicas: vec![
                ReplicaInfo { name: "alpha".into(), cardinality: 3, set_hash: 0xFEED },
                ReplicaInfo { name: "beta".into(), cardinality: 0, set_hash: u64::MAX },
            ],
        });
        roundtrip(StatResp {
            stat: StoreStat { cardinality: 5, set_hash: 0xABCD, ladder: vec![16], wal_records: 2 },
        });
        roundtrip(ErrorResp { message: "unknown replica".into() });
    }

    #[test]
    fn names_reject_bad_utf8() {
        let mut buf = Vec::new();
        write_length_prefixed(&mut buf, &[0xFF, 0xFE]);
        assert!(OpenReq::from_bytes(&buf).is_err());
    }
}
