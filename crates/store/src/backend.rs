//! Durable byte-blob storage behind the [`SketchStore`](crate::SketchStore).
//!
//! The store needs exactly four primitives — read a named blob, replace it
//! atomically, append to it, delete it — plus enumeration for recovery. Both
//! implementations expose the same observable behavior (pinned by the
//! backend-parity test), so everything above this trait is storage-agnostic.

use recon_base::ReconError;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Maximum length of a blob name.
pub const MAX_NAME_LEN: usize = 128;

/// Reject names that could escape the backing directory or collide with the
/// temp files used for atomic replacement. Shared by both backends so the
/// in-memory one faithfully mirrors the on-disk one's failure surface.
pub fn validate_name(name: &str) -> Result<(), ReconError> {
    let ok = !name.is_empty()
        && name.len() <= MAX_NAME_LEN
        && !name.starts_with('.')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(ReconError::InvalidInput(format!("invalid blob name {name:?}")))
    }
}

/// A named-blob storage backend. Implementations must be `Send` so a store can
/// live behind the daemon's worker threads.
pub trait StorageBackend: Send {
    /// Read the full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, ReconError>;

    /// Replace `name` with `bytes` atomically: a crash mid-write must leave
    /// either the old contents or the new, never a torn mixture.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError>;

    /// Append `bytes` to `name`, creating it if absent. Appends are *not*
    /// atomic — a crash may leave a torn tail, which the WAL record format is
    /// built to detect and drop.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError>;

    /// Delete `name`; deleting a missing blob is a no-op.
    fn remove(&mut self, name: &str) -> Result<(), ReconError>;

    /// All blob names, sorted.
    fn list(&self) -> Result<Vec<String>, ReconError>;
}

impl<B: StorageBackend + ?Sized> StorageBackend for Box<B> {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, ReconError> {
        (**self).read(name)
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError> {
        (**self).write_atomic(name, bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError> {
        (**self).append(name, bytes)
    }

    fn remove(&mut self, name: &str) -> Result<(), ReconError> {
        (**self).remove(name)
    }

    fn list(&self) -> Result<Vec<String>, ReconError> {
        (**self).list()
    }
}

/// A heap-backed [`StorageBackend`] for tests and ephemeral daemons.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, ReconError> {
        validate_name(name)?;
        Ok(self.blobs.get(name).cloned())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError> {
        validate_name(name)?;
        self.blobs.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError> {
        validate_name(name)?;
        self.blobs.entry(name.to_string()).or_default().extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), ReconError> {
        validate_name(name)?;
        self.blobs.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, ReconError> {
        Ok(self.blobs.keys().cloned().collect())
    }
}

/// A local-directory [`StorageBackend`]: one file per blob.
///
/// Atomic replacement goes through a dot-prefixed temp file (invisible to
/// [`StorageBackend::list`], which only reports valid blob names) followed by
/// a rename, and the replacement is fsynced before the rename so a crash
/// cannot promote an unwritten file.
#[derive(Debug)]
pub struct DirBackend {
    root: PathBuf,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> ReconError {
    ReconError::Transport(format!("{context} {}: {e}", path.display()))
}

impl DirBackend {
    /// Open (creating if needed) the directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ReconError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create dir", &root, e))?;
        Ok(Self { root })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl StorageBackend for DirBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, ReconError> {
        validate_name(name)?;
        let path = self.path_of(name);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &path, e)),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError> {
        validate_name(name)?;
        let path = self.path_of(name);
        let tmp = self.root.join(format!(".{name}.tmp"));
        {
            let mut file =
                std::fs::File::create(&tmp).map_err(|e| io_err("create temp", &tmp, e))?;
            file.write_all(bytes).map_err(|e| io_err("write temp", &tmp, e))?;
            file.sync_all().map_err(|e| io_err("sync temp", &tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename", &path, e))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), ReconError> {
        validate_name(name)?;
        let path = self.path_of(name);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open append", &path, e))?;
        file.write_all(bytes).map_err(|e| io_err("append", &path, e))
    }

    fn remove(&mut self, name: &str) -> Result<(), ReconError> {
        validate_name(name)?;
        let path = self.path_of(name);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &path, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, ReconError> {
        let mut names = Vec::new();
        let entries =
            std::fs::read_dir(&self.root).map_err(|e| io_err("read dir", &self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir entry", &self.root, e))?;
            if let Some(name) = entry.file_name().to_str() {
                if validate_name(name).is_ok() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("recon-store-backend-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(backend: &mut dyn StorageBackend) {
        assert_eq!(backend.read("a.snap").unwrap(), None);
        backend.write_atomic("a.snap", b"one").unwrap();
        backend.append("a.wal", b"xy").unwrap();
        backend.append("a.wal", b"z").unwrap();
        assert_eq!(backend.read("a.snap").unwrap().unwrap(), b"one");
        assert_eq!(backend.read("a.wal").unwrap().unwrap(), b"xyz");
        backend.write_atomic("a.snap", b"two").unwrap();
        assert_eq!(backend.read("a.snap").unwrap().unwrap(), b"two");
        assert_eq!(backend.list().unwrap(), vec!["a.snap".to_string(), "a.wal".to_string()]);
        backend.remove("a.wal").unwrap();
        backend.remove("a.wal").unwrap(); // idempotent
        assert_eq!(backend.list().unwrap(), vec!["a.snap".to_string()]);
        assert!(backend.read("../escape").is_err());
        assert!(backend.write_atomic("", b"x").is_err());
        assert!(backend.append(".hidden", b"x").is_err());
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&mut MemoryBackend::new());
    }

    #[test]
    fn dir_backend_contract() {
        let dir = temp_dir("contract");
        exercise(&mut DirBackend::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_backend_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut b = DirBackend::open(&dir).unwrap();
            b.write_atomic("r.snap", b"snapshot").unwrap();
            b.append("r.wal", b"records").unwrap();
        }
        let b = DirBackend::open(&dir).unwrap();
        assert_eq!(b.read("r.snap").unwrap().unwrap(), b"snapshot");
        assert_eq!(b.read("r.wal").unwrap().unwrap(), b"records");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_files_are_invisible_to_list() {
        let dir = temp_dir("tmpvis");
        let mut b = DirBackend::open(&dir).unwrap();
        b.write_atomic("x.snap", b"data").unwrap();
        std::fs::write(dir.join(".y.tmp"), b"torn").unwrap();
        assert_eq!(b.list().unwrap(), vec!["x.snap".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
