//! The write-ahead mutation log.
//!
//! Every applied mutation is appended to the replica's WAL before the store
//! acknowledges it; recovery loads the last snapshot and replays the log on
//! top. Records are fixed-width and individually checksummed:
//!
//! ```text
//! ┌────────┬──────────────┬────────────────────┐
//! │ op: u8 │ key: u64 LE  │ checksum: u64 LE   │   17 bytes
//! └────────┴──────────────┴────────────────────┘
//! ```
//!
//! The checksum is a seeded [`hash64`] over the op and key, so replay can
//! detect a torn tail (a crash mid-append) at any byte boundary: the first
//! short or checksum-failing record ends the valid prefix, and everything
//! after it is dropped — exactly the surviving-prefix semantics the
//! crash-recovery proptest pins.

use recon_base::hash::hash64;
use recon_base::ReconError;

/// Serialized size of one WAL record.
pub const RECORD_BYTES: usize = 17;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One logged mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// `insert(key)` was applied.
    Insert(u64),
    /// `delete(key)` was applied.
    Delete(u64),
}

impl WalOp {
    /// The key this mutation touches.
    pub fn key(&self) -> u64 {
        match *self {
            WalOp::Insert(k) | WalOp::Delete(k) => k,
        }
    }

    fn op_byte(&self) -> u8 {
        match self {
            WalOp::Insert(_) => OP_INSERT,
            WalOp::Delete(_) => OP_DELETE,
        }
    }
}

fn checksum(op: u8, key: u64, seed: u64) -> u64 {
    hash64(key ^ ((op as u64) << 56), seed)
}

/// Encode one record into `buf`.
pub fn append_record(buf: &mut Vec<u8>, op: WalOp, seed: u64) {
    let byte = op.op_byte();
    buf.push(byte);
    buf.extend_from_slice(&op.key().to_le_bytes());
    buf.extend_from_slice(&checksum(byte, op.key(), seed).to_le_bytes());
}

/// The result of scanning a WAL blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Mutations in the valid prefix, in append order.
    pub ops: Vec<WalOp>,
    /// Bytes of torn tail dropped after the valid prefix (0 for a clean log).
    pub dropped_bytes: usize,
}

impl WalScan {
    /// Length in bytes of the valid prefix.
    pub fn valid_bytes(&self) -> usize {
        self.ops.len() * RECORD_BYTES
    }
}

/// Scan `bytes`, returning the longest valid record prefix and the size of the
/// dropped tail. Never fails: a corrupt or truncated log is simply shorter.
pub fn scan(bytes: &[u8], seed: u64) -> WalScan {
    let mut ops = Vec::with_capacity(bytes.len() / RECORD_BYTES);
    let mut offset = 0;
    while offset + RECORD_BYTES <= bytes.len() {
        let record = &bytes[offset..offset + RECORD_BYTES];
        let op_byte = record[0];
        let key = u64::from_le_bytes(record[1..9].try_into().expect("8 bytes"));
        let stored = u64::from_le_bytes(record[9..17].try_into().expect("8 bytes"));
        if stored != checksum(op_byte, key, seed) {
            break;
        }
        let op = match op_byte {
            OP_INSERT => WalOp::Insert(key),
            OP_DELETE => WalOp::Delete(key),
            _ => break,
        };
        ops.push(op);
        offset += RECORD_BYTES;
    }
    WalScan { dropped_bytes: bytes.len() - offset, ops }
}

/// Decode a WAL that must be whole: any dropped tail is an error. Used by
/// paths that just wrote the log themselves.
pub fn scan_strict(bytes: &[u8], seed: u64) -> Result<Vec<WalOp>, ReconError> {
    let scanned = scan(bytes, seed);
    if scanned.dropped_bytes != 0 {
        return Err(ReconError::InvalidInput(format!(
            "WAL has {} bytes of torn tail",
            scanned.dropped_bytes
        )));
    }
    Ok(scanned.ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log(seed: u64) -> (Vec<u8>, Vec<WalOp>) {
        let ops = vec![
            WalOp::Insert(7),
            WalOp::Insert(u64::MAX),
            WalOp::Delete(7),
            WalOp::Insert(0),
            WalOp::Delete(12345),
        ];
        let mut buf = Vec::new();
        for &op in &ops {
            append_record(&mut buf, op, seed);
        }
        (buf, ops)
    }

    #[test]
    fn clean_log_roundtrips() {
        let (buf, ops) = sample_log(42);
        assert_eq!(buf.len(), ops.len() * RECORD_BYTES);
        let scanned = scan(&buf, 42);
        assert_eq!(scanned.ops, ops);
        assert_eq!(scanned.dropped_bytes, 0);
        assert_eq!(scan_strict(&buf, 42).unwrap(), ops);
    }

    #[test]
    fn truncation_at_every_boundary_keeps_whole_record_prefix() {
        let (buf, ops) = sample_log(7);
        for cut in 0..=buf.len() {
            let scanned = scan(&buf[..cut], 7);
            let whole = cut / RECORD_BYTES;
            assert_eq!(scanned.ops, ops[..whole], "cut at {cut}");
            assert_eq!(scanned.dropped_bytes, cut - whole * RECORD_BYTES, "cut at {cut}");
        }
    }

    #[test]
    fn corruption_ends_the_prefix() {
        let (mut buf, ops) = sample_log(9);
        buf[2 * RECORD_BYTES + 3] ^= 0x40; // flip a key bit in record 2
        let scanned = scan(&buf, 9);
        assert_eq!(scanned.ops, ops[..2]);
        assert_eq!(scanned.dropped_bytes, 3 * RECORD_BYTES);
        assert!(scan_strict(&buf, 9).is_err());
    }

    #[test]
    fn wrong_seed_rejects_everything() {
        let (buf, _) = sample_log(1);
        assert_eq!(scan(&buf, 2).ops, Vec::new());
    }

    #[test]
    fn unknown_op_byte_ends_the_prefix() {
        let (mut buf, _) = sample_log(3);
        // Forge a record with a valid checksum but an unknown op byte.
        let key = 99u64;
        buf.truncate(RECORD_BYTES);
        buf.extend_from_slice(&[9u8]);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&super::checksum(9, key, 3).to_le_bytes());
        let scanned = scan(&buf, 3);
        assert_eq!(scanned.ops.len(), 1);
        assert_eq!(scanned.dropped_bytes, RECORD_BYTES);
    }
}
