//! The reconciliation daemon: a [`SketchStore`] wired into the reactor
//! [`Server`] as a long-lived [`TcpService`].
//!
//! Each accepted connection gets one control session ([`CONTROL_SESSION`],
//! daemon side `Role::Alice`) speaking [`ControlFrame`]s with the opcodes in
//! [`crate::control`]. Mutations and queries are answered inline from the
//! party's `handle`; a `Reconcile` request is two-phase because registering a
//! new data session needs the endpoint, which a sans-I/O party never sees:
//!
//! 1. `handle` validates the request against the store, resolves the ladder
//!    rung, and queues a job on the connection's shared state;
//! 2. [`StoreService::on_progress`] (the reactor's post-pump visit) drains the
//!    queue, registers an [`AmplifiedSender`] Alice on the requested session —
//!    attempt 0 served from the **cached** bank in `O(d)`, retries rebuilt
//!    under fresh hash functions — and only then queues the `ReconcileResp`,
//!    so a client that has the response knows its session is live.
//!
//! The served envelopes reproduce [`iblt_known_alice`]'s byte-for-byte (same
//! seed chain, same labels, same tag), so the client runs a completely
//! ordinary [`iblt_known_bob`](recon_set::session::iblt_known_bob) against a
//! daemon that never pays `O(n)` per session.
//!
//! [`iblt_known_alice`]: recon_set::session::iblt_known_alice

use recon_base::ReconError;
use recon_protocol::{
    AmplifiedSender, ControlFrame, Envelope, Party, Role, SessionId, Step, CONTROL_SESSION,
};
use recon_runtime::{ConnId, Server, ServerConfig, TcpEndpoint, TcpService};
use recon_set::session::TAG_DIGEST;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use crate::backend::StorageBackend;
use crate::control::{
    ErrorResp, ListResp, MutateReq, MutateResp, OpenReq, OpenResp, ReconcileReq, ReconcileResp,
    SnapshotReq, SnapshotResp, StatReq, StatResp, OP_CLOSE, OP_DELETE, OP_ERROR, OP_INSERT,
    OP_LIST, OP_OPEN, OP_RECONCILE, OP_SNAPSHOT, OP_STAT,
};
use crate::store::SketchStore;

/// A validated `Reconcile` request waiting for endpoint access.
struct ReconcileJob {
    request_id: u64,
    session: SessionId,
    name: String,
    d: usize,
    max_attempts: u64,
    estimated: Option<u64>,
}

/// Per-connection state shared between the control party (which runs inside
/// the endpoint) and the service (which owns the endpoint access).
#[derive(Default)]
struct ConnShared {
    jobs: Vec<ReconcileJob>,
    outbox: VecDeque<Envelope>,
}

/// The control party: daemon side of one connection's control session.
struct ControlParty<B: StorageBackend> {
    store: Arc<Mutex<SketchStore<B>>>,
    shared: Arc<Mutex<ConnShared>>,
}

impl<B: StorageBackend> ControlParty<B> {
    /// Serve one request inline, or queue a reconcile job. `Ok(None)` means
    /// the response is deferred to [`StoreService::on_progress`].
    fn serve(&mut self, frame: &ControlFrame) -> Result<Option<ControlFrame>, ReconError> {
        let mut store = self.store.lock().expect("store lock");
        let response = match frame.op {
            OP_OPEN => {
                let req: OpenReq = frame.decode_payload()?;
                let params = if req.create {
                    store.open_replica(&req.name)?
                } else {
                    store.params(&req.name)?
                };
                ControlFrame::new(frame.request_id, OP_OPEN, &OpenResp { params })
            }
            OP_INSERT | OP_DELETE => {
                let req: MutateReq = frame.decode_payload()?;
                let applied = if frame.op == OP_INSERT {
                    store.insert(&req.name, &req.keys)?
                } else {
                    store.delete(&req.name, &req.keys)?
                };
                let total = store.stat(&req.name)?.cardinality;
                ControlFrame::new(frame.request_id, frame.op, &MutateResp { applied, total })
            }
            OP_RECONCILE => {
                let req: ReconcileReq = frame.decode_payload()?;
                if req.session == CONTROL_SESSION {
                    return Err(ReconError::InvalidInput(
                        "data session id collides with the control session".into(),
                    ));
                }
                let params = store.params(&req.name)?;
                let (d, estimated) = match req.d_bound {
                    Some(bound) => {
                        let rung = params.rung_for(bound as usize).ok_or(
                            ReconError::DifferenceBoundTooSmall {
                                bound: *params.ladder.last().expect("non-empty ladder"),
                            },
                        )?;
                        (rung, None)
                    }
                    None => {
                        let estimator = req.estimator.as_ref().ok_or_else(|| {
                            ReconError::InvalidInput(
                                "reconcile without a bound needs an estimator".into(),
                            )
                        })?;
                        let (estimate, rung) = store.estimate_bound(&req.name, estimator)?;
                        (rung, Some(estimate as u64))
                    }
                };
                self.shared.lock().expect("conn lock").jobs.push(ReconcileJob {
                    request_id: frame.request_id,
                    session: req.session,
                    name: req.name,
                    d,
                    max_attempts: params.max_attempts,
                    estimated,
                });
                return Ok(None);
            }
            OP_SNAPSHOT => {
                let req: SnapshotReq = frame.decode_payload()?;
                let bytes = store.snapshot(&req.name)?;
                ControlFrame::new(frame.request_id, OP_SNAPSHOT, &SnapshotResp { bytes })
            }
            OP_STAT => {
                let req: StatReq = frame.decode_payload()?;
                let stat = store.stat(&req.name)?;
                ControlFrame::new(frame.request_id, OP_STAT, &StatResp { stat })
            }
            OP_LIST => {
                frame.decode_payload::<()>()?;
                ControlFrame::new(frame.request_id, OP_LIST, &ListResp { replicas: store.list() })
            }
            OP_CLOSE => ControlFrame::new(frame.request_id, OP_CLOSE, &()),
            op => {
                return Err(ReconError::InvalidInput(format!("unknown control opcode {op:#06x}")))
            }
        };
        Ok(Some(response))
    }
}

impl<B: StorageBackend> Party for ControlParty<B> {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.shared.lock().expect("conn lock").outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<()>, ReconError> {
        let frame = ControlFrame::from_envelope(&envelope)?;
        // A failed operation answers with OP_ERROR but keeps the session:
        // one bad request must not tear down a long-lived control channel.
        let response = match self.serve(&frame) {
            Ok(Some(response)) => response,
            Ok(None) => return Ok(Step::Continue),
            Err(error) => ControlFrame::new(
                frame.request_id,
                OP_ERROR,
                &ErrorResp { message: error.to_string() },
            ),
        };
        self.shared
            .lock()
            .expect("conn lock")
            .outbox
            .push_back(response.response_envelope("control response"));
        // Never `Step::Done` — a done session core stops sending, which would
        // strand the queued response (the `Close` ack included). The session
        // retires through the client's `Fin` instead, like any Alice side.
        Ok(Step::Continue)
    }
}

/// The per-worker [`TcpService`] serving a shared [`SketchStore`].
pub struct StoreService<B: StorageBackend> {
    store: Arc<Mutex<SketchStore<B>>>,
    /// Set by `register`, claimed by the `on_accepted` that follows it (the
    /// worker loop calls them back-to-back on one thread).
    pending: Option<Arc<Mutex<ConnShared>>>,
    conns: HashMap<ConnId, Arc<Mutex<ConnShared>>>,
}

impl<B: StorageBackend> StoreService<B> {
    /// A service over a shared store handle.
    pub fn new(store: Arc<Mutex<SketchStore<B>>>) -> Self {
        Self { store, pending: None, conns: HashMap::new() }
    }
}

impl<B: StorageBackend + 'static> TcpService for StoreService<B> {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut TcpEndpoint,
    ) -> Result<(), ReconError> {
        let shared = Arc::new(Mutex::new(ConnShared::default()));
        let party = ControlParty { store: Arc::clone(&self.store), shared: Arc::clone(&shared) };
        endpoint.register(CONTROL_SESSION, Role::Alice, party)?;
        self.pending = Some(shared);
        Ok(())
    }

    fn on_accepted(&mut self, conn: ConnId, _peer: SocketAddr) {
        let shared = self.pending.take().expect("on_accepted follows register");
        self.conns.insert(conn, shared);
    }

    fn on_progress(&mut self, conn: ConnId, endpoint: &mut TcpEndpoint) {
        if let Some(shared) = self.conns.get(&conn) {
            let jobs: Vec<ReconcileJob> =
                std::mem::take(&mut shared.lock().expect("conn lock").jobs);
            for job in jobs {
                let store = Arc::clone(&self.store);
                let name = job.name.clone();
                let d = job.d;
                let sender = AmplifiedSender::new(job.max_attempts, move |attempt| {
                    let store = store.lock().expect("store lock");
                    if attempt == 0 {
                        // The cached bank: O(d), bit-identical to a fresh build.
                        let (_, digest) = store.digest(&name, d)?;
                        Ok(Envelope::round(TAG_DIGEST, "set digest (IBLT)", &digest))
                    } else {
                        let digest = store.rebuild_digest(&name, d, attempt)?;
                        Ok(Envelope::round(TAG_DIGEST, "set digest (replica)", &digest))
                    }
                });
                let response = match sender
                    .and_then(|party| endpoint.register(job.session, Role::Alice, party))
                {
                    Ok(()) => ControlFrame::new(
                        job.request_id,
                        OP_RECONCILE,
                        &ReconcileResp {
                            session: job.session,
                            d: job.d as u64,
                            estimated: job.estimated,
                        },
                    ),
                    Err(error) => ControlFrame::new(
                        job.request_id,
                        OP_ERROR,
                        &ErrorResp { message: error.to_string() },
                    ),
                };
                shared
                    .lock()
                    .expect("conn lock")
                    .outbox
                    .push_back(response.response_envelope("control response"));
            }
        }
        endpoint.close_finished();
    }

    fn on_closed(
        &mut self,
        conn: ConnId,
        _endpoint: &TcpEndpoint,
        _result: &Result<(), ReconError>,
    ) {
        self.conns.remove(&conn);
    }
}

/// A running store daemon: a multi-reactor [`Server`] whose workers share one
/// [`SketchStore`].
pub struct StoreDaemon<B: StorageBackend> {
    server: Server,
    store: Arc<Mutex<SketchStore<B>>>,
}

impl<B: StorageBackend + 'static> StoreDaemon<B> {
    /// Bind `addr` and serve `store` on `workers` reactor threads. The server
    /// runs without session deadlines: control sessions live as long as their
    /// connections.
    pub fn bind(
        addr: impl ToSocketAddrs,
        store: SketchStore<B>,
        workers: usize,
    ) -> Result<Self, ReconError> {
        let config = ServerConfig::new()
            .workers(workers.max(1))
            .session_deadline(None)
            .accept_seed(0x5709ED);
        Self::bind_with(addr, store, config)
    }

    /// [`StoreDaemon::bind`] with full control over the [`ServerConfig`] —
    /// deadlines, accept topology, and the per-connection resource caps
    /// (frame size, session count, buffered output).
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        store: SketchStore<B>,
        config: ServerConfig,
    ) -> Result<Self, ReconError> {
        let store = Arc::new(Mutex::new(store));
        let server = {
            let store = Arc::clone(&store);
            Server::bind(addr, config, move |_| StoreService::new(Arc::clone(&store)))?
        };
        Ok(Self { server, store })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Shared handle to the store (e.g. for out-of-band mutations in tests).
    pub fn store(&self) -> Arc<Mutex<SketchStore<B>>> {
        Arc::clone(&self.store)
    }

    /// Stop serving and reclaim the store. The store is `None` only if some
    /// external [`StoreDaemon::store`] handle is still alive.
    pub fn shutdown(self) -> (recon_runtime::ServerStats, Option<SketchStore<B>>) {
        let stats = self.server.shutdown();
        let store = Arc::try_unwrap(self.store)
            .ok()
            .map(|mutex| mutex.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner()));
        (stats, store)
    }
}
