//! The [`SketchStore`]: named [`Replica`]s over a [`StorageBackend`], with
//! durable snapshots and write-ahead logging.
//!
//! On-backend layout, per replica `name`:
//!
//! * `name.snap` — a full [`Replica::encode_snapshot`] (written atomically),
//! * `name.wal` — fixed-width checksummed mutation records appended since the
//!   last snapshot (see [`crate::wal`]).
//!
//! Mutations are logged before they are acknowledged; [`SketchStore::open`]
//! loads every snapshot and replays its log on top, dropping any torn tail a
//! crash left behind (and truncating the file to the surviving prefix so later
//! appends extend a valid log). Because replica mutations are exactly
//! reversible sketch updates, the recovered state is bit-identical to a
//! from-scratch rebuild over the surviving mutations — the crash-recovery
//! proptest pins this at every truncation boundary.

use recon_base::rng::split_seed;
use recon_base::ReconError;
use recon_estimator::StrataEstimator;
use recon_set::SetDigest;
use std::collections::BTreeMap;

use crate::backend::StorageBackend;
use crate::replica::{Replica, ReplicaParams};
use crate::wal::{self, WalOp};

/// Store-wide configuration: the master seed replica seeds are derived from
/// and the sketch shape given to newly created replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Master seed; each replica's seed is split from it by name.
    pub seed: u64,
    /// Ladder of difference-bound rungs for new replicas.
    pub ladder: Vec<usize>,
    /// Replication budget for new replicas' sessions.
    pub max_attempts: u64,
    /// Auto-snapshot threshold: once a replica's WAL reaches this many logged
    /// records, the store snapshots it and truncates the log — a long-lived
    /// daemon checkpoints itself instead of growing the WAL unboundedly.
    /// `None` disables auto-snapshotting (records are 17 bytes each, see
    /// [`crate::wal::RECORD_BYTES`], so a byte budget divides down to this).
    pub wal_snapshot_records: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            seed: 0x5709E,
            ladder: vec![16, 64, 256, 1024],
            max_attempts: 4,
            wal_snapshot_records: None,
        }
    }
}

impl StoreConfig {
    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the rung ladder.
    pub fn with_ladder(mut self, ladder: Vec<usize>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Auto-snapshot every replica whose WAL reaches `records` logged
    /// mutations (clamped to at least 1).
    pub fn with_wal_snapshot_records(mut self, records: u64) -> Self {
        self.wal_snapshot_records = Some(records.max(1));
        self
    }

    /// Auto-snapshot every replica whose WAL reaches `bytes` on the backend —
    /// the byte-budget spelling of [`StoreConfig::with_wal_snapshot_records`]
    /// (records are fixed-width, so the budget divides exactly).
    pub fn with_wal_snapshot_bytes(self, bytes: u64) -> Self {
        self.with_wal_snapshot_records(bytes / wal::RECORD_BYTES as u64)
    }

    fn params_for(&self, name: &str) -> ReplicaParams {
        let name_hash = recon_base::hash::hash_bytes(name.as_bytes(), 0x5709);
        ReplicaParams {
            seed: split_seed(self.seed, name_hash),
            ladder: self.ladder.clone(),
            max_attempts: self.max_attempts,
        }
    }
}

/// A point-in-time summary of one replica, served by the daemon's `Stat` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStat {
    /// Number of keys.
    pub cardinality: u64,
    /// Current whole-set hash (attempt-0 digest seed).
    pub set_hash: u64,
    /// The replica's rung ladder.
    pub ladder: Vec<usize>,
    /// Mutations logged since the last snapshot.
    pub wal_records: u64,
}

/// One row of the daemon's `ListReplicas` response: enough for an operator or
/// a fleet hub to enumerate replicas instead of guessing names, and to compare
/// convergence state (the incremental set hash) without pulling key sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaInfo {
    /// Replica name.
    pub name: String,
    /// Number of keys.
    pub cardinality: u64,
    /// Current whole-set hash (equal hashes ⇒ equal sets, w.h.p.).
    pub set_hash: u64,
}

struct Slot {
    replica: Replica,
    wal_records: u64,
}

/// Named replicas over a storage backend. See the module docs.
pub struct SketchStore<B: StorageBackend> {
    backend: B,
    config: StoreConfig,
    replicas: BTreeMap<String, Slot>,
}

fn snap_name(name: &str) -> String {
    format!("{name}.snap")
}

fn wal_name(name: &str) -> String {
    format!("{name}.wal")
}

/// Validate a replica name: backend-safe and free of the `.snap`/`.wal`
/// suffixes the store appends.
fn validate_replica_name(name: &str) -> Result<(), ReconError> {
    crate::backend::validate_name(name)?;
    if name.ends_with(".snap") || name.ends_with(".wal") {
        return Err(ReconError::InvalidInput(format!("reserved replica name {name:?}")));
    }
    Ok(())
}

impl<B: StorageBackend> SketchStore<B> {
    /// Open a store, recovering every replica the backend holds: load each
    /// snapshot, replay its WAL on top (dropping any torn tail), and truncate
    /// the log to the surviving prefix.
    pub fn open(backend: B, config: StoreConfig) -> Result<Self, ReconError> {
        let mut store = Self { backend, config, replicas: BTreeMap::new() };
        for blob in store.backend.list()? {
            let Some(name) = blob.strip_suffix(".snap").map(str::to_string) else { continue };
            let bytes = store
                .backend
                .read(&blob)?
                .ok_or_else(|| ReconError::InvalidInput(format!("{blob} vanished")))?;
            let mut replica = Replica::decode_snapshot(&bytes)?;
            let mut wal_records = 0u64;
            if let Some(log) = store.backend.read(&wal_name(&name))? {
                let scanned = wal::scan(&log, replica.params().wal_seed());
                for &op in &scanned.ops {
                    replica.apply(op);
                }
                wal_records = scanned.ops.len() as u64;
                if scanned.dropped_bytes > 0 {
                    // Truncate the torn tail so future appends extend a valid log.
                    store.backend.write_atomic(&wal_name(&name), &log[..scanned.valid_bytes()])?;
                }
            }
            store.replicas.insert(name, Slot { replica, wal_records });
        }
        Ok(store)
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Names of all replicas, sorted.
    pub fn replica_names(&self) -> Vec<String> {
        self.replicas.keys().cloned().collect()
    }

    /// Enumerate every replica with its cardinality and current set hash,
    /// sorted by name — the store side of the daemon's `ListReplicas` op.
    pub fn list(&self) -> Vec<ReplicaInfo> {
        self.replicas
            .iter()
            .map(|(name, slot)| ReplicaInfo {
                name: name.clone(),
                cardinality: slot.replica.len() as u64,
                set_hash: slot.replica.set_hash(),
            })
            .collect()
    }

    fn slot(&self, name: &str) -> Result<&Slot, ReconError> {
        self.replicas
            .get(name)
            .ok_or_else(|| ReconError::InvalidInput(format!("unknown replica {name:?}")))
    }

    /// Open (creating and durably initializing if absent) the replica `name`,
    /// returning its parameters.
    pub fn open_replica(&mut self, name: &str) -> Result<ReplicaParams, ReconError> {
        validate_replica_name(name)?;
        if let Some(slot) = self.replicas.get(name) {
            return Ok(slot.replica.params().clone());
        }
        let replica = Replica::new(self.config.params_for(name))?;
        self.backend.write_atomic(&snap_name(name), &replica.encode_snapshot())?;
        self.backend.remove(&wal_name(name))?;
        let params = replica.params().clone();
        self.replicas.insert(name.to_string(), Slot { replica, wal_records: 0 });
        Ok(params)
    }

    fn mutate(
        &mut self,
        name: &str,
        keys: &[u64],
        to_op: impl Fn(u64) -> WalOp,
    ) -> Result<u64, ReconError> {
        let slot = self
            .replicas
            .get_mut(name)
            .ok_or_else(|| ReconError::InvalidInput(format!("unknown replica {name:?}")))?;
        // Log-ahead: collect the records that will apply (no-ops are neither
        // applied nor logged), append them in one write, then mutate. The
        // overlay tracks membership changes earlier in this same batch.
        let wal_seed = slot.replica.params().wal_seed();
        let mut log = Vec::new();
        let mut ops = Vec::new();
        let mut overlay: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        for &key in keys {
            let op = to_op(key);
            let present =
                overlay.get(&key).copied().unwrap_or_else(|| slot.replica.keys().contains(&key));
            let changes = match op {
                WalOp::Insert(_) => !present,
                WalOp::Delete(_) => present,
            };
            if changes {
                overlay.insert(key, matches!(op, WalOp::Insert(_)));
                wal::append_record(&mut log, op, wal_seed);
                ops.push(op);
            }
        }
        if ops.is_empty() {
            return Ok(0);
        }
        self.backend.append(&wal_name(name), &log)?;
        let slot = self.replicas.get_mut(name).expect("checked above");
        for op in &ops {
            let changed = slot.replica.apply(*op);
            debug_assert!(changed, "WAL-logged mutation must change the replica");
            let _ = changed;
            slot.wal_records += 1;
        }
        // Self-checkpointing: once the WAL crosses the configured budget,
        // fold it into a fresh snapshot so a long-lived daemon's log never
        // grows unboundedly. The mutations above are already durable either
        // way — the snapshot just moves them out of the replay path.
        let wal_records = slot.wal_records;
        if self.config.wal_snapshot_records.is_some_and(|threshold| wal_records >= threshold) {
            self.snapshot(name)?;
        }
        Ok(ops.len() as u64)
    }

    /// Insert `keys`, returning how many actually changed the set. Applied
    /// mutations are WAL-logged before the sketches are touched.
    pub fn insert(&mut self, name: &str, keys: &[u64]) -> Result<u64, ReconError> {
        self.mutate(name, keys, WalOp::Insert)
    }

    /// Delete `keys`, returning how many actually changed the set.
    pub fn delete(&mut self, name: &str, keys: &[u64]) -> Result<u64, ReconError> {
        self.mutate(name, keys, WalOp::Delete)
    }

    /// Write a fresh snapshot of `name` and reset its WAL. Returns the
    /// snapshot size in bytes.
    pub fn snapshot(&mut self, name: &str) -> Result<u64, ReconError> {
        let slot = self
            .replicas
            .get_mut(name)
            .ok_or_else(|| ReconError::InvalidInput(format!("unknown replica {name:?}")))?;
        let bytes = slot.replica.encode_snapshot();
        self.backend.write_atomic(&snap_name(name), &bytes)?;
        self.backend.remove(&wal_name(name))?;
        slot.wal_records = 0;
        Ok(bytes.len() as u64)
    }

    /// Summary statistics for `name`.
    pub fn stat(&self, name: &str) -> Result<StoreStat, ReconError> {
        let slot = self.slot(name)?;
        Ok(StoreStat {
            cardinality: slot.replica.len() as u64,
            set_hash: slot.replica.set_hash(),
            ladder: slot.replica.params().ladder.clone(),
            wal_records: slot.wal_records,
        })
    }

    /// The parameters of replica `name`.
    pub fn params(&self, name: &str) -> Result<ReplicaParams, ReconError> {
        Ok(self.slot(name)?.replica.params().clone())
    }

    /// The key set of replica `name` (tests and retry rebuilds).
    pub fn keys(&self, name: &str) -> Result<&std::collections::HashSet<u64>, ReconError> {
        Ok(self.slot(name)?.replica.keys())
    }

    /// Serve the cached digest of `name` for difference bound `d`: `O(d)`,
    /// never a rebuild. Errors if `d` exceeds the replica's ladder.
    pub fn digest(&self, name: &str, d: usize) -> Result<(usize, SetDigest), ReconError> {
        let slot = self.slot(name)?;
        slot.replica.digest(d).ok_or_else(|| ReconError::DifferenceBoundTooSmall {
            bound: *slot.replica.params().ladder.last().expect("non-empty ladder"),
        })
    }

    /// Build a retry digest (attempt ≥ 1) for `name` from scratch.
    pub fn rebuild_digest(
        &self,
        name: &str,
        d: usize,
        attempt: u64,
    ) -> Result<SetDigest, ReconError> {
        Ok(self.slot(name)?.replica.rebuild_digest(d, attempt))
    }

    /// Estimate the difference between `name` and a client's B-side strata
    /// estimator, returning `(estimate, effective bound)`.
    pub fn estimate_bound(
        &self,
        name: &str,
        client: &StrataEstimator,
    ) -> Result<(usize, usize), ReconError> {
        self.slot(name)?.replica.estimate_bound(client)
    }

    /// Consume the store, returning its backend (used by restart tests).
    pub fn into_backend(self) -> B {
        self.backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use recon_base::wire::Encode;

    fn small_config() -> StoreConfig {
        StoreConfig::default().with_seed(77).with_ladder(vec![8, 32])
    }

    #[test]
    fn open_replica_is_idempotent_and_durable() {
        let mut store = SketchStore::open(MemoryBackend::new(), small_config()).unwrap();
        let params = store.open_replica("alpha").unwrap();
        assert_eq!(store.open_replica("alpha").unwrap(), params);
        assert_eq!(store.replica_names(), vec!["alpha".to_string()]);

        // A different name gets a different seed from the same master seed.
        let beta = store.open_replica("beta").unwrap();
        assert_ne!(beta.seed, params.seed);

        let reopened = SketchStore::open(store.into_backend(), small_config()).unwrap();
        assert_eq!(reopened.params("alpha").unwrap(), params);
    }

    #[test]
    fn mutations_replay_after_restart() {
        let mut store = SketchStore::open(MemoryBackend::new(), small_config()).unwrap();
        store.open_replica("r").unwrap();
        assert_eq!(store.insert("r", &[1, 2, 3, 2]).unwrap(), 3, "duplicate is a no-op");
        assert_eq!(store.delete("r", &[2, 99]).unwrap(), 1, "missing delete is a no-op");
        assert_eq!(store.stat("r").unwrap().wal_records, 4);
        let digest_before = store.digest("r", 4).unwrap().1.to_bytes();

        let store2 = SketchStore::open(store.into_backend(), small_config()).unwrap();
        assert_eq!(store2.keys("r").unwrap(), &[1u64, 3].into_iter().collect());
        assert_eq!(store2.stat("r").unwrap().wal_records, 4);
        assert_eq!(store2.digest("r", 4).unwrap().1.to_bytes(), digest_before);
    }

    #[test]
    fn snapshot_resets_the_wal() {
        let mut store = SketchStore::open(MemoryBackend::new(), small_config()).unwrap();
        store.open_replica("r").unwrap();
        store.insert("r", &(0..20).collect::<Vec<_>>()).unwrap();
        assert!(store.snapshot("r").unwrap() > 0);
        assert_eq!(store.stat("r").unwrap().wal_records, 0);
        let digest = store.digest("r", 8).unwrap().1.to_bytes();
        let store2 = SketchStore::open(store.into_backend(), small_config()).unwrap();
        assert_eq!(store2.stat("r").unwrap().wal_records, 0);
        assert_eq!(store2.digest("r", 8).unwrap().1.to_bytes(), digest);
    }

    #[test]
    fn unknown_replica_and_bad_names_error() {
        let mut store = SketchStore::open(MemoryBackend::new(), small_config()).unwrap();
        assert!(store.insert("ghost", &[1]).is_err());
        assert!(store.stat("ghost").is_err());
        assert!(store.open_replica("bad/name").is_err());
        assert!(store.open_replica("clash.snap").is_err());
        store.open_replica("r").unwrap();
        assert!(matches!(
            store.digest("r", 10_000),
            Err(ReconError::DifferenceBoundTooSmall { .. })
        ));
    }

    #[test]
    fn wal_autosnapshot_truncates_past_the_threshold() {
        let config = small_config().with_wal_snapshot_records(10);
        let mut store = SketchStore::open(MemoryBackend::new(), config.clone()).unwrap();
        store.open_replica("r").unwrap();

        // Below the budget the WAL just grows.
        store.insert("r", &(0..9).collect::<Vec<_>>()).unwrap();
        assert_eq!(store.stat("r").unwrap().wal_records, 9);

        // The batch that crosses the threshold trips a snapshot: the WAL
        // resets and the backing log blob is gone.
        store.insert("r", &(9..14).collect::<Vec<_>>()).unwrap();
        assert_eq!(store.stat("r").unwrap().wal_records, 0);
        let digest = store.digest("r", 4).unwrap().1.to_bytes();
        let backend = store.into_backend();
        assert!(backend.read("r.wal").unwrap().is_none(), "auto-snapshot must drop the WAL");

        // Restart parity: recovery comes purely from the snapshot.
        let store2 = SketchStore::open(backend, config).unwrap();
        assert_eq!(store2.keys("r").unwrap(), &(0u64..14).collect());
        assert_eq!(store2.stat("r").unwrap().wal_records, 0);
        assert_eq!(store2.digest("r", 4).unwrap().1.to_bytes(), digest);
    }

    #[test]
    fn wal_snapshot_bytes_divides_to_records() {
        let config = small_config().with_wal_snapshot_bytes(5 * crate::wal::RECORD_BYTES as u64);
        assert_eq!(config.wal_snapshot_records, Some(5));
        // A sub-record byte budget still checkpoints (clamped to 1 record).
        assert_eq!(small_config().with_wal_snapshot_bytes(3).wal_snapshot_records, Some(1));
    }

    #[test]
    fn list_enumerates_replicas_with_hashes() {
        let mut store = SketchStore::open(MemoryBackend::new(), small_config()).unwrap();
        assert!(store.list().is_empty());
        store.open_replica("beta").unwrap();
        store.open_replica("alpha").unwrap();
        store.insert("alpha", &[1, 2, 3]).unwrap();
        let infos = store.list();
        assert_eq!(
            infos.iter().map(|info| info.name.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "beta"],
            "sorted by name"
        );
        assert_eq!(infos[0].cardinality, 3);
        assert_eq!(infos[0].set_hash, store.stat("alpha").unwrap().set_hash);
        assert_eq!(infos[1].cardinality, 0);
    }

    #[test]
    fn digest_cache_tracks_mutations() {
        let mut store = SketchStore::open(MemoryBackend::new(), small_config()).unwrap();
        store.open_replica("r").unwrap();
        store.insert("r", &(0..100).collect::<Vec<_>>()).unwrap();
        store.delete("r", &[5, 10]).unwrap();
        let (d, cached) = store.digest("r", 20).unwrap();
        assert_eq!(d, 32);
        let protocol = store.params("r").unwrap().protocol_for_attempt(0);
        let fresh = protocol.digest(store.keys("r").unwrap(), 32);
        assert_eq!(cached.to_bytes(), fresh.to_bytes());
    }
}
