//! Crash-recovery property: truncate the WAL at an **arbitrary byte boundary**
//! (a torn append), reopen the store, and the recovered replica must be
//! bit-identical to a store that was rebuilt from scratch over the surviving
//! prefix of mutations — snapshots, digests, statistics, everything.

use proptest::prelude::*;
use recon_store::wal;
use recon_store::{MemoryBackend, SketchStore, StorageBackend, StoreConfig};

fn config() -> StoreConfig {
    StoreConfig::default().with_seed(0xC4A5).with_ladder(vec![8, 32])
}

/// `(insert?, key)` scripts over a small key pool so deletes actually hit.
fn script() -> impl Strategy<Value = Vec<(bool, u64)>> {
    proptest::collection::vec((any::<bool>(), 0u64..48), 0..60)
}

fn apply(store: &mut SketchStore<MemoryBackend>, ops: &[(bool, u64)]) {
    for &(insert, key) in ops {
        if insert {
            store.insert("r", &[key]).unwrap();
        } else {
            store.delete("r", &[key]).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn torn_wal_recovers_to_the_surviving_prefix(
        before_snap in script(),
        after_snap in script(),
        cut_pick in any::<u64>(),
    ) {
        // Run the full script; everything after the snapshot lives in the WAL.
        let mut store = SketchStore::open(MemoryBackend::new(), config()).unwrap();
        store.open_replica("r").unwrap();
        apply(&mut store, &before_snap);
        store.snapshot("r").unwrap();
        apply(&mut store, &after_snap);
        let wal_seed = store.params("r").unwrap().wal_seed();
        let mut backend = store.into_backend();

        // Crash: the tail of the WAL is torn at an arbitrary byte.
        let log = backend.read("r.wal").unwrap().unwrap_or_default();
        let cut = (cut_pick % (log.len() as u64 + 1)) as usize;
        let torn = &log[..cut];
        backend.write_atomic("r.wal", torn).unwrap();

        // Recovery replays exactly the whole records before the cut.
        let surviving = wal::scan(torn, wal_seed);
        prop_assert_eq!(surviving.ops.len(), cut / wal::RECORD_BYTES);
        let mut recovered = SketchStore::open(backend, config()).unwrap();
        prop_assert_eq!(recovered.stat("r").unwrap().wal_records, surviving.ops.len() as u64);

        // Reference: a fresh store over snapshot-prefix + surviving mutations.
        let mut reference = SketchStore::open(MemoryBackend::new(), config()).unwrap();
        reference.open_replica("r").unwrap();
        apply(&mut reference, &before_snap);
        reference.snapshot("r").unwrap();
        for op in &surviving.ops {
            match op {
                wal::WalOp::Insert(k) => reference.insert("r", &[*k]).unwrap(),
                wal::WalOp::Delete(k) => reference.delete("r", &[*k]).unwrap(),
            };
        }

        prop_assert_eq!(recovered.keys("r").unwrap(), reference.keys("r").unwrap());
        prop_assert_eq!(recovered.stat("r").unwrap(), reference.stat("r").unwrap());

        // Bit-identical durable state: snapshotting both stores must produce
        // the same bytes (sorted keys, incremental hash state, every bank).
        recovered.snapshot("r").unwrap();
        reference.snapshot("r").unwrap();
        let recovered_backend = recovered.into_backend();
        let reference_backend = reference.into_backend();
        prop_assert_eq!(
            recovered_backend.read("r.snap").unwrap().unwrap(),
            reference_backend.read("r.snap").unwrap().unwrap()
        );

        // And the store keeps working after recovery: the truncated WAL was
        // rewritten to the valid prefix, so further appends extend cleanly.
        let mut store = SketchStore::open(recovered_backend, config()).unwrap();
        store.insert("r", &[1000, 1001]).unwrap();
        let reopened = SketchStore::open(store.into_backend(), config()).unwrap();
        prop_assert!(reopened.keys("r").unwrap().contains(&1000));
        prop_assert!(reopened.keys("r").unwrap().contains(&1001));
    }
}
