//! End-to-end daemon parity: a long-lived [`StoreDaemon`] serving
//! reconciliation from cached sketches must be observationally identical —
//! recovered set, `CommStats`, wire bytes — to a cold one-shot session over
//! the same data, without ever rebuilding a digest from scratch.

use recon_set::full_digest_builds;
use recon_set::session::{iblt_known_alice, iblt_known_bob};
use recon_store::{MemoryBackend, SketchStore, StoreClient, StoreConfig, StoreDaemon};
use std::collections::HashSet;

fn daemon_config() -> StoreConfig {
    StoreConfig::default().with_seed(0xDAE0).with_ladder(vec![16, 64, 256])
}

#[test]
fn daemon_serves_byte_identical_sessions_without_rebuilds() {
    let store = SketchStore::open(MemoryBackend::new(), daemon_config()).unwrap();
    let daemon = StoreDaemon::bind("127.0.0.1:0", store, 2).unwrap();
    let mut client = StoreClient::connect(daemon.local_addr()).unwrap();

    // A churned replica: 3000 inserts, 300 deletes, applied over the wire.
    let params = client.open("events").unwrap();
    let keys: Vec<u64> = (0..3000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    for chunk in keys.chunks(500) {
        client.insert("events", chunk).unwrap();
    }
    let doomed: Vec<u64> = keys.iter().copied().take(300).collect();
    let (applied, total) = client.delete("events", &doomed).unwrap();
    assert_eq!(applied, 300);
    assert_eq!(total, 2700);
    let replica_keys: HashSet<u64> = keys[300..].iter().copied().collect();

    // Bob drifts: 12 missing, 8 extra (symmetric difference 20).
    let mut local: HashSet<u64> = replica_keys.iter().copied().skip(12).collect();
    for extra in 0..8u64 {
        local.insert(0xB0B_0000 + extra);
    }

    // Known-d reconciliation, served from the maintained bank: the full-build
    // counter must not move — that is the "never rebuilt from scratch" pin.
    let builds_before = full_digest_builds();
    let report = client.reconcile("events", &local, Some(20)).unwrap();
    assert_eq!(
        full_digest_builds(),
        builds_before,
        "daemon-served reconciliation must not rebuild a digest"
    );
    assert_eq!(report.recovered, replica_keys);
    assert_eq!(report.d, 64, "20 rounds up to the 64 rung");
    assert_eq!(report.estimated, None);

    // Cold one-shot session over the same sets and the same effective bound:
    // outcomes and CommStats must match byte for byte.
    let config = params.session_config();
    let cold = recon_protocol::SessionBuilder::new(params.seed)
        .amplification(config.amplification)
        .run(
            iblt_known_alice(&replica_keys, report.d as usize, &config).unwrap(),
            iblt_known_bob(&local, &config),
        )
        .unwrap();
    assert_eq!(cold.recovered, replica_keys);
    assert_eq!(report.stats, cold.stats, "daemon stats must equal a cold session's");
    assert!(report.stats.bytes_alice_to_bob > 0);

    // Unknown-d: the daemon merges strata estimators and picks a rung.
    let report2 = client.reconcile("events", &local, None).unwrap();
    assert_eq!(report2.recovered, replica_keys);
    let estimate = report2.estimated.expect("daemon estimated the difference");
    assert!(estimate >= 5, "20 true differences, estimate {estimate}");
    assert!(params.ladder.contains(&(report2.d as usize)));

    // Reconciling twice more reuses the same cached bank (sessions get fresh
    // ids, outcomes stay stable).
    let report3 = client.reconcile("events", &local, Some(20)).unwrap();
    assert_eq!(report3.recovered, replica_keys);
    assert_eq!(report3.stats, report.stats);

    client.close().unwrap();
    let (stats, store) = daemon.shutdown();
    assert_eq!(stats.served(), 1, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
    let store = store.expect("all handles released");
    assert_eq!(store.keys("events").unwrap(), &replica_keys);
}

#[test]
fn daemon_survives_bad_requests_and_serves_many_clients() {
    let store = SketchStore::open(MemoryBackend::new(), daemon_config()).unwrap();
    let daemon = StoreDaemon::bind("127.0.0.1:0", store, 2).unwrap();
    let addr = daemon.local_addr();

    // Seed one replica through a setup client.
    let mut setup = StoreClient::connect(addr).unwrap();
    setup.open("shared").unwrap();
    let keys: Vec<u64> = (0..800u64).collect();
    setup.insert("shared", &keys).unwrap();

    // Errors answer on the control channel without killing the session...
    assert!(setup.stat("ghost").is_err());
    assert!(setup.reconcile("ghost", &HashSet::new(), Some(8)).is_err());
    let err = setup.reconcile("shared", &HashSet::new(), Some(100_000)).unwrap_err();
    assert!(format!("{err}").contains("daemon error"), "{err}");
    // ...and the session keeps working afterwards.
    let stat = setup.stat("shared").unwrap();
    assert_eq!(stat.cardinality, 800);
    assert_eq!(stat.wal_records, 800);

    // Discovery over the wire: ListReplicas names the replica with its
    // cardinality and set hash instead of making clients guess.
    let infos = setup.list().unwrap();
    assert_eq!(infos.len(), 1);
    assert_eq!(infos[0].name, "shared");
    assert_eq!(infos[0].cardinality, 800);
    assert_eq!(infos[0].set_hash, stat.set_hash);
    setup.close().unwrap();

    // Concurrent clients reconcile against the same cached sketches.
    let expected: HashSet<u64> = keys.iter().copied().collect();
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = StoreClient::connect(addr).unwrap();
                let local: HashSet<u64> = expected.iter().copied().skip(i as usize + 1).collect();
                let report = client.reconcile("shared", &local, Some(16)).unwrap();
                assert_eq!(report.recovered, expected);
                client.close().unwrap();
                report.stats
            })
        })
        .collect();
    let all_stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Same rung, same replica: every client pays the same Alice→Bob bytes.
    for stats in &all_stats[1..] {
        assert_eq!(stats.bytes_alice_to_bob, all_stats[0].bytes_alice_to_bob);
    }

    let (stats, _) = daemon.shutdown();
    assert_eq!(stats.served(), 5, "{stats:?}");
    assert_eq!(stats.failed, 0, "{stats:?}");
}

#[test]
fn mutations_during_daemon_lifetime_are_durable() {
    // Daemon over a dir backend: mutations applied over the wire survive a
    // full daemon restart (snapshot + WAL replay on reopen).
    let dir = std::env::temp_dir().join(format!("recon-store-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let open_store = || {
        SketchStore::open(recon_store::DirBackend::open(&dir).unwrap(), daemon_config()).unwrap()
    };

    let daemon = StoreDaemon::bind("127.0.0.1:0", open_store(), 1).unwrap();
    let mut client = StoreClient::connect(daemon.local_addr()).unwrap();
    client.open("journal").unwrap();
    client.insert("journal", &(0..500u64).collect::<Vec<_>>()).unwrap();
    client.snapshot("journal").unwrap();
    client.insert("journal", &(500..640u64).collect::<Vec<_>>()).unwrap();
    client.delete("journal", &[0, 1, 2]).unwrap();
    assert_eq!(client.stat("journal").unwrap().wal_records, 143);
    client.close().unwrap();
    daemon.shutdown();

    // Restart from disk: snapshot + 143 logged mutations replay exactly.
    let daemon = StoreDaemon::bind("127.0.0.1:0", open_store(), 1).unwrap();
    let mut client = StoreClient::connect(daemon.local_addr()).unwrap();
    let stat = client.stat("journal").unwrap();
    assert_eq!(stat.cardinality, 637);
    assert_eq!(stat.wal_records, 143);
    let expected: HashSet<u64> = (3..640).collect();
    let report =
        client.reconcile("journal", &(3..600).collect::<HashSet<u64>>(), Some(60)).unwrap();
    assert_eq!(report.recovered, expected);
    client.close().unwrap();
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
