//! Property coverage for the store's control vocabulary: every op body
//! roundtrips through its wire encoding and through a [`ControlFrame`], and
//! the daemon's error path — `OP_ERROR` echoing the request id — holds for
//! arbitrary garbage requests on a live connection, without killing the
//! control session.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use recon_base::wire::{Decode, Encode};
use recon_base::ReconError;
use recon_estimator::{Side, StrataEstimator};
use recon_protocol::{ControlFrame, Envelope, Party, Role, Step, CONTROL_SESSION};
use recon_runtime::{connect_endpoint, drive_endpoint, ReactorConfig};
use recon_store::control::{
    ErrorResp, ListResp, MutateReq, MutateResp, OpenReq, OpenResp, ReconcileReq, ReconcileResp,
    SnapshotReq, SnapshotResp, StatReq, StatResp, OP_ERROR, OP_LIST, OP_OPEN, OP_RECONCILE,
    OP_STAT,
};
use recon_store::{
    MemoryBackend, ReplicaInfo, ReplicaParams, SketchStore, StoreClient, StoreConfig, StoreDaemon,
    StoreStat,
};
use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};

fn lowercase(bytes: Vec<u8>) -> String {
    bytes.into_iter().map(|b| (b'a' + b % 26) as char).collect()
}

fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T, op: u16) {
    assert_eq!(&T::from_bytes(&value.to_bytes()).unwrap(), value, "direct wire roundtrip");
    // And through a ControlFrame + its uncharged envelope, like the daemon.
    let frame = ControlFrame::new(7, op, value);
    let envelope = Envelope::from_bytes(&frame.response_envelope("resp").to_bytes()).unwrap();
    let back = ControlFrame::from_envelope(&envelope).unwrap();
    assert_eq!(back.request_id, 7);
    assert_eq!(back.op, op);
    assert_eq!(&back.decode_payload::<T>().unwrap(), value, "frame roundtrip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every control body — including the new `OP_LIST` rows — survives
    /// encode → decode unchanged, bare and wrapped in a [`ControlFrame`].
    #[test]
    fn store_control_bodies_roundtrip(
        name_bytes in pvec(0u8..26, 0..12),
        create in any::<bool>(),
        keys in pvec(any::<u64>(), 0..48),
        applied in any::<u64>(),
        total in any::<u64>(),
        session in 1u64..10_000,
        d_bound in any::<u64>(),
        with_bound in any::<bool>(),
        snapshot_bytes in any::<u64>(),
        ladder_steps in pvec(1usize..50, 1..5),
        rows in pvec((pvec(0u8..26, 0..8), any::<u64>(), any::<u64>()), 0..6),
        message_bytes in pvec(0u8..26, 0..40),
        estimated in any::<u64>(),
    ) {
        let name = lowercase(name_bytes);
        roundtrip(&OpenReq { name: name.clone(), create }, OP_OPEN);

        // Strictly ascending ladder from positive increments.
        let ladder: Vec<usize> = ladder_steps
            .iter()
            .scan(0usize, |acc, &step| { *acc += step; Some(*acc) })
            .collect();
        let params = ReplicaParams { seed: d_bound, ladder: ladder.clone(), max_attempts: 3 };
        roundtrip(&OpenResp { params: params.clone() }, OP_OPEN);

        roundtrip(&MutateReq { name: name.clone(), keys: keys.clone() }, 2);
        roundtrip(&MutateResp { applied, total }, 2);

        let estimator = if with_bound {
            None
        } else {
            let mut estimator = StrataEstimator::new(&params.strata_config());
            for &key in &keys {
                estimator.update(key, Side::B);
            }
            Some(estimator)
        };
        roundtrip(
            &ReconcileReq {
                name: name.clone(),
                session,
                d_bound: with_bound.then_some(d_bound),
                estimator,
            },
            OP_RECONCILE,
        );
        roundtrip(
            &ReconcileResp { session, d: d_bound, estimated: with_bound.then_some(estimated) },
            OP_RECONCILE,
        );

        roundtrip(&SnapshotReq { name: name.clone() }, 5);
        roundtrip(&SnapshotResp { bytes: snapshot_bytes }, 5);
        roundtrip(&StatReq { name: name.clone() }, OP_STAT);
        roundtrip(
            &StatResp {
                stat: StoreStat {
                    cardinality: total,
                    set_hash: d_bound,
                    ladder,
                    wal_records: applied,
                },
            },
            OP_STAT,
        );

        let replicas: Vec<ReplicaInfo> = rows
            .into_iter()
            .map(|(bytes, cardinality, set_hash)| ReplicaInfo {
                name: lowercase(bytes),
                cardinality,
                set_hash,
            })
            .collect();
        roundtrip(&ListResp { replicas }, OP_LIST);
        roundtrip(&ErrorResp { message: lowercase(message_bytes) }, OP_ERROR);
    }

    /// Live daemon error echo: an arbitrary bad request — unknown opcode or
    /// known opcode with garbage payload — is answered with `OP_ERROR` under
    /// the *same* request id, and the control session survives to serve a
    /// valid request right after.
    #[test]
    fn daemon_echoes_op_error_for_arbitrary_garbage(
        request_id in any::<u64>(),
        unknown_op in 9u16..0xFFFF,
        garbage in pvec(any::<u8>(), 0..64),
        use_known_op in any::<bool>(),
    ) {
        let addr = shared_daemon();
        let mut endpoint = connect_endpoint(addr).expect("connect");
        let shared = Arc::new(Mutex::new(RawShared::default()));
        endpoint
            .register(CONTROL_SESSION, Role::Bob, RawControl(Arc::clone(&shared)))
            .expect("register");

        // Garbage first. A known op with random payload bytes exercises the
        // body-decode error path; an unknown op the dispatch error path.
        let op = if use_known_op { OP_RECONCILE } else { unknown_op };
        let bad = ControlFrame { request_id, op, payload: garbage };
        let error = raw_request(&mut endpoint, &shared, bad).expect("error response");
        prop_assert_eq!(error.request_id, request_id, "error echoes the request id");
        prop_assert_eq!(error.op, OP_ERROR);
        let resp: ErrorResp = error.decode_payload().expect("error body");
        prop_assert!(!resp.message.is_empty());

        // The session is still alive: a valid Stat answers normally.
        let follow_up = request_id.wrapping_add(1);
        let stat = ControlFrame::new(follow_up, OP_STAT, &StatReq { name: "seed".into() });
        let ok = raw_request(&mut endpoint, &shared, stat).expect("stat response");
        prop_assert_eq!(ok.request_id, follow_up);
        prop_assert_eq!(ok.op, OP_STAT);
        let stat: StatResp = ok.decode_payload().expect("stat body");
        prop_assert_eq!(stat.stat.cardinality, 64);
    }
}

/// One daemon for every proptest case, seeded with a 64-key replica named
/// `seed`; leaked so its worker threads outlive the test cases.
fn shared_daemon() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let store = SketchStore::open(
            MemoryBackend::new(),
            StoreConfig::default().with_seed(0xEC40).with_ladder(vec![16, 64]),
        )
        .unwrap();
        let daemon = StoreDaemon::bind("127.0.0.1:0", store, 1).unwrap();
        let addr = daemon.local_addr();
        let mut client = StoreClient::connect(addr).unwrap();
        client.open("seed").unwrap();
        client.insert("seed", &(0..64u64).collect::<Vec<_>>()).unwrap();
        client.close().unwrap();
        std::mem::forget(daemon);
        addr
    })
}

#[derive(Default)]
struct RawShared {
    inbox: HashMap<u64, ControlFrame>,
    outbox: VecDeque<Envelope>,
}

/// A bare-hands control party: sends whatever frames the test queues —
/// including malformed ones a [`StoreClient`] would never produce — and
/// files every response by request id.
struct RawControl(Arc<Mutex<RawShared>>);

impl Party for RawControl {
    type Output = ();

    fn poll_send(&mut self) -> Option<Envelope> {
        self.0.lock().expect("raw lock").outbox.pop_front()
    }

    fn handle(&mut self, envelope: Envelope) -> Result<Step<()>, ReconError> {
        let frame = ControlFrame::from_envelope(&envelope)?;
        self.0.lock().expect("raw lock").inbox.insert(frame.request_id, frame);
        Ok(Step::Continue)
    }
}

fn raw_request(
    endpoint: &mut recon_runtime::TcpEndpoint,
    shared: &Arc<Mutex<RawShared>>,
    frame: ControlFrame,
) -> Result<ControlFrame, ReconError> {
    let request_id = frame.request_id;
    shared.lock().expect("raw lock").outbox.push_back(frame.request_envelope("raw request"));
    drive_endpoint(endpoint, &ReactorConfig::default(), |_| {
        Ok(shared.lock().expect("raw lock").inbox.contains_key(&request_id))
    })?;
    Ok(shared
        .lock()
        .expect("raw lock")
        .inbox
        .remove(&request_id)
        .expect("drive returned with the response present"))
}
