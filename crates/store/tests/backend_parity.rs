//! Backend parity: the same mutation script driven through a [`MemoryBackend`]
//! store and a [`DirBackend`] store must leave byte-identical durable state
//! (snapshots, WALs) and serve observationally identical reconciliation
//! (recovered sets, digests, `CommStats`).

use recon_base::wire::Encode;
use recon_store::{
    DirBackend, MemoryBackend, SketchStore, StorageBackend, StoreClient, StoreConfig, StoreDaemon,
};
use std::collections::HashSet;
use std::path::PathBuf;

fn config() -> StoreConfig {
    StoreConfig::default().with_seed(0xBAC0).with_ladder(vec![8, 32, 128])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recon-store-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drive the same script over any backend; returns the store for inspection.
fn run_script<B: StorageBackend>(backend: B) -> SketchStore<B> {
    let mut store = SketchStore::open(backend, config()).unwrap();
    store.open_replica("alpha").unwrap();
    store.open_replica("beta").unwrap();
    store.insert("alpha", &(0..400u64).map(|i| i * 7).collect::<Vec<_>>()).unwrap();
    store.delete("alpha", &[0, 7, 14, 21]).unwrap();
    store.insert("beta", &[1, 2, 3]).unwrap();
    store.snapshot("alpha").unwrap();
    // Post-snapshot churn lands in the WAL.
    store.insert("alpha", &(400..450u64).map(|i| i * 7).collect::<Vec<_>>()).unwrap();
    store.delete("alpha", &[28, 999_999]).unwrap();
    store
}

#[test]
fn memory_and_dir_backends_hold_identical_state() {
    let dir = temp_dir("state");
    let mem_store = run_script(MemoryBackend::new());
    let dir_store = run_script(DirBackend::open(&dir).unwrap());

    // Same live sketches: every rung's digest serializes to the same bytes.
    for d in [4usize, 20, 100] {
        let (mem_d, mem_digest) = mem_store.digest("alpha", d).unwrap();
        let (dir_d, dir_digest) = dir_store.digest("alpha", d).unwrap();
        assert_eq!(mem_d, dir_d);
        assert_eq!(mem_digest.to_bytes(), dir_digest.to_bytes(), "digest at d={d}");
    }
    assert_eq!(mem_store.stat("alpha").unwrap(), dir_store.stat("alpha").unwrap());
    assert_eq!(mem_store.stat("beta").unwrap(), dir_store.stat("beta").unwrap());

    // Same durable bytes: snapshots and WALs are byte-identical across
    // backends, blob for blob.
    let mem_backend = mem_store.into_backend();
    let dir_backend = dir_store.into_backend();
    let names = mem_backend.list().unwrap();
    assert_eq!(names, dir_backend.list().unwrap());
    assert!(names.contains(&"alpha.snap".to_string()));
    assert!(names.contains(&"alpha.wal".to_string()));
    for name in &names {
        assert_eq!(
            mem_backend.read(name).unwrap().unwrap(),
            dir_backend.read(name).unwrap().unwrap(),
            "blob {name}"
        );
    }

    // And both recover to the same state.
    let mem_store = SketchStore::open(mem_backend, config()).unwrap();
    let dir_store = SketchStore::open(dir_backend, config()).unwrap();
    let (_, mem_digest) = mem_store.digest("alpha", 16).unwrap();
    let (_, dir_digest) = dir_store.digest("alpha", 16).unwrap();
    assert_eq!(mem_digest.to_bytes(), dir_digest.to_bytes());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemons_over_either_backend_serve_identical_sessions() {
    let dir = temp_dir("serve");
    let local: HashSet<u64> = (0..400u64).map(|i| i * 7).filter(|k| k % 5 != 0).skip(3).collect();
    let mut outcomes = Vec::new();
    let mut serve = |store: SketchStore<_>| {
        let daemon = StoreDaemon::bind("127.0.0.1:0", store, 1).unwrap();
        let mut client = StoreClient::connect(daemon.local_addr()).unwrap();
        let known = client.reconcile("alpha", &local, Some(120)).unwrap();
        let estimated = client.reconcile("alpha", &local, None).unwrap();
        client.close().unwrap();
        daemon.shutdown();
        outcomes.push((known.recovered, known.stats, known.d, estimated.stats, estimated.d));
    };
    // DirBackend goes through boxing to give both closures one store type.
    let boxed_mem: Box<dyn StorageBackend> = Box::new(MemoryBackend::new());
    let boxed_dir: Box<dyn StorageBackend> = Box::new(DirBackend::open(&dir).unwrap());
    serve(run_script_boxed(boxed_mem));
    serve(run_script_boxed(boxed_dir));

    let (mem, dir_outcome) = (outcomes.remove(0), outcomes.remove(0));
    assert_eq!(mem.0, dir_outcome.0, "recovered sets differ across backends");
    assert_eq!(mem.1, dir_outcome.1, "known-d CommStats differ across backends");
    assert_eq!(mem.2, dir_outcome.2);
    assert_eq!(mem.3, dir_outcome.3, "estimated CommStats differ across backends");
    assert_eq!(mem.4, dir_outcome.4);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn run_script_boxed(backend: Box<dyn StorageBackend>) -> SketchStore<Box<dyn StorageBackend>> {
    run_script(backend)
}
