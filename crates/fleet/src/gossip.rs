//! Gossip topology: deterministic random pairwise exchanges until the whole
//! fleet converges.
//!
//! Each round draws a perfect matching from a seeded Fisher–Yates shuffle
//! (`split_seed(seed, round)` — replayable, machine-independent) and runs one
//! **bidirectional** exchange per pair: two ordinary IBLT sessions
//! multiplexed over a single connection, one per direction, both served from
//! the members' *cached* rung banks (`member::cached_alice`) and sized by one
//! symmetric strata estimate per pair. After an exchange both ends hold the
//! pair's union, so every key spreads to an expected `2^r` members after `r`
//! rounds — convergence in `O(log n)` rounds whp, which the tests and the
//! `fleet_converge` bench both observe.
//!
//! Exchanges run either in-process ([`GossipTransport::Memory`], endpoints
//! driven by [`drive_pair`]) or over real TCP sockets
//! ([`GossipTransport::Tcp`], each end driven by [`drive_endpoint`] on its
//! own thread) — same sessions, same bytes, pinned by tests.

use crate::member::{cached_alice, Member};
use crate::stats::{FleetStats, Ledger, RoundStats};
use crate::FleetRunner;
use recon_base::rng::{split_seed, Xoshiro256};
use recon_base::ReconError;
use recon_protocol::{
    drive_pair, Endpoint, MemoryTransport, Outcome, Role, SessionId, StreamTransport,
};
use recon_runtime::{connect_endpoint, drive_endpoint, ReactorConfig, TcpEndpoint};
use recon_store::ReplicaParams;
use std::collections::HashSet;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

/// How gossip exchanges move bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipTransport {
    /// In-process [`MemoryTransport`] pairs driven by [`drive_pair`].
    Memory,
    /// Real loopback TCP sockets, each end driven by [`drive_endpoint`] on
    /// its own thread.
    Tcp,
}

/// Tuning for a [`GossipRunner`].
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Fleet seed: derives the shared replica parameters and every round's
    /// pairing shuffle.
    pub seed: u64,
    /// Difference-bound ladder every member maintains banks for.
    pub ladder: Vec<usize>,
    /// Retry budget per session.
    pub max_attempts: u64,
    /// Fixed difference bound per exchange; `None` sizes each pair with a
    /// strata estimate (one merge per pair, symmetric in the directions).
    pub d_bound: Option<usize>,
    /// How exchange bytes move.
    pub transport: GossipTransport,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            seed: 0xF1EE7,
            ladder: vec![16, 64, 256],
            max_attempts: 4,
            d_bound: None,
            transport: GossipTransport::Memory,
        }
    }
}

/// Both directions' recoveries from one exchange: `(for_i, for_j)`, each the
/// peer's full set plus that session's stats.
type PairOutcomes = (Outcome<HashSet<u64>>, Outcome<HashSet<u64>>);

/// Session id of the accept-side → connect-side direction of an exchange.
const PUSH: SessionId = 1;
/// Session id of the opposite direction.
const PULL: SessionId = 2;

/// A gossip fleet. See the module docs.
pub struct GossipRunner {
    config: GossipConfig,
    params: ReplicaParams,
    members: Vec<Arc<Mutex<Member>>>,
    ledger: Ledger,
}

impl GossipRunner {
    /// Build a fleet with one member per entry of `sets`, all sharing the
    /// parameters derived from `config`.
    pub fn new(
        config: GossipConfig,
        sets: impl IntoIterator<Item = HashSet<u64>>,
    ) -> Result<Self, ReconError> {
        let params = ReplicaParams {
            seed: split_seed(config.seed, 0xF1E0),
            ladder: config.ladder.clone(),
            max_attempts: config.max_attempts,
        };
        let members = sets
            .into_iter()
            .map(|set| Ok(Arc::new(Mutex::new(Member::from_keys(params.clone(), set)?))))
            .collect::<Result<Vec<_>, ReconError>>()?;
        let ledger = Ledger::new(members.len());
        Ok(Self { config, params, members, ledger })
    }

    /// The fleet-shared replica parameters.
    pub fn params(&self) -> &ReplicaParams {
        &self.params
    }

    /// Insert `key` into member `replica` (churn injection between rounds).
    pub fn insert(&mut self, replica: usize, key: u64) -> bool {
        self.members[replica].lock().expect("member lock").insert(key)
    }

    /// Remove `key` from member `replica`. Gossip merges are unions, so a
    /// removed key survives on — and will be resown from — every other
    /// member that holds it; convergence is still to a common set.
    pub fn remove(&mut self, replica: usize, key: u64) -> bool {
        self.members[replica].lock().expect("member lock").remove(key)
    }

    /// Member `replica`'s current key set (cloned).
    pub fn keys(&self, replica: usize) -> HashSet<u64> {
        self.members[replica].lock().expect("member lock").keys().clone()
    }

    /// Member `replica`'s whole-set hash.
    pub fn set_hash(&self, replica: usize) -> u64 {
        self.members[replica].lock().expect("member lock").set_hash()
    }

    /// This round's matching: a seeded shuffle chunked into pairs (one
    /// member idles when the fleet is odd).
    fn pairs_for_round(&self, round: usize) -> Vec<(usize, usize)> {
        let mut order: Vec<usize> = (0..self.members.len()).collect();
        let mut rng = Xoshiro256::new(split_seed(self.config.seed, 0x90551 + round as u64));
        for i in (1..order.len()).rev() {
            order.swap(i, rng.next_index(i + 1));
        }
        order.chunks_exact(2).map(|pair| (pair[0], pair[1])).collect()
    }

    /// The difference bound for an `(i, j)` exchange: configured, or one
    /// symmetric strata estimate for the pair.
    fn pair_bound(&self, i: usize, j: usize) -> Result<usize, ReconError> {
        match self.config.d_bound {
            Some(d) => Ok(d),
            None => {
                let a = self.members[i].lock().expect("member lock");
                let b = self.members[j].lock().expect("member lock");
                let (_, rung) = a.estimate_bound(&b)?;
                Ok(rung)
            }
        }
    }

    /// Run the `(i, j)` exchange, returning `(outcome_for_i, outcome_for_j)`
    /// — each side's recovery of the peer's full set, with that session's
    /// stats.
    fn exchange(&self, i: usize, j: usize, d: usize) -> Result<PairOutcomes, ReconError> {
        match self.config.transport {
            GossipTransport::Memory => self.exchange_memory(i, j, d),
            GossipTransport::Tcp => self.exchange_tcp(i, j, d),
        }
    }

    fn exchange_memory(&self, i: usize, j: usize, d: usize) -> Result<PairOutcomes, ReconError> {
        let (transport_i, transport_j) = MemoryTransport::pair();
        let mut end_i = Endpoint::new(transport_i);
        let mut end_j = Endpoint::new(transport_j);
        end_i.register(PUSH, Role::Alice, cached_alice(&self.members[i], d)?)?;
        end_j.register(
            PUSH,
            Role::Bob,
            self.members[j].lock().expect("member lock").bob_party(),
        )?;
        end_j.register(PULL, Role::Alice, cached_alice(&self.members[j], d)?)?;
        end_i.register(
            PULL,
            Role::Bob,
            self.members[i].lock().expect("member lock").bob_party(),
        )?;
        drive_pair(&mut end_i, &mut end_j)?;
        let for_j = end_j.take_outcome::<HashSet<u64>>(PUSH).expect("driven to completion")?;
        let for_i = end_i.take_outcome::<HashSet<u64>>(PULL).expect("driven to completion")?;
        Ok((for_i, for_j))
    }

    fn exchange_tcp(&self, i: usize, j: usize, d: usize) -> Result<PairOutcomes, ReconError> {
        fn io_err(context: &str, e: std::io::Error) -> ReconError {
            ReconError::Transport(format!("gossip tcp {context}: {e}"))
        }
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("bind", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local addr", e))?;

        // Parties are built up front (they are `Send`; an `Endpoint` is not,
        // so each side's endpoint is assembled on the thread that drives it).
        let alice_i = cached_alice(&self.members[i], d)?;
        let bob_i = self.members[i].lock().expect("member lock").bob_party();
        let alice_j = cached_alice(&self.members[j], d)?;
        let bob_j = self.members[j].lock().expect("member lock").bob_party();

        // One readiness loop per endpoint, each on its own thread: a session
        // is retired once its Bob outcome is taken and the peer's Fin closed
        // the Alice side, exactly like a daemon client.
        fn drive_side(
            endpoint: &mut TcpEndpoint,
            bob_session: SessionId,
            alice_session: SessionId,
        ) -> Result<Outcome<HashSet<u64>>, ReconError> {
            let config = ReactorConfig::default();
            let mut outcome = None;
            let mut alice_closed = false;
            drive_endpoint(endpoint, &config, |endpoint| {
                if outcome.is_none() {
                    if let Some(done) = endpoint.take_outcome::<HashSet<u64>>(bob_session) {
                        outcome = Some(done?);
                    }
                }
                if !alice_closed && endpoint.is_finished(alice_session) == Some(true) {
                    endpoint.close(alice_session);
                    alice_closed = true;
                }
                Ok(outcome.is_some() && alice_closed)
            })?;
            Ok(outcome.expect("drive returned with the outcome present"))
        }

        std::thread::scope(|scope| {
            let acceptor = scope.spawn(move || -> Result<Outcome<HashSet<u64>>, ReconError> {
                let (stream, _) = listener.accept().map_err(|e| io_err("accept", e))?;
                stream.set_nonblocking(true).map_err(|e| io_err("nonblock", e))?;
                stream.set_nodelay(true).map_err(|e| io_err("nodelay", e))?;
                let reader = stream.try_clone().map_err(|e| io_err("clone", e))?;
                let mut end_j: TcpEndpoint = Endpoint::new(StreamTransport::new(reader, stream));
                end_j.register(PUSH, Role::Bob, bob_j)?;
                end_j.register(PULL, Role::Alice, alice_j)?;
                drive_side(&mut end_j, PUSH, PULL)
            });
            let for_i = (|| {
                let mut end_i = connect_endpoint(addr)?;
                end_i.register(PUSH, Role::Alice, alice_i)?;
                end_i.register(PULL, Role::Bob, bob_i)?;
                drive_side(&mut end_i, PULL, PUSH)
            })();
            if for_i.is_err() {
                // Unblock the acceptor if it never saw our connection.
                let _ = std::net::TcpStream::connect(addr);
            }
            let for_j = acceptor
                .join()
                .map_err(|_| ReconError::Transport("gossip acceptor panicked".into()))?;
            // Prefer the acceptor's error: a connector failure is usually
            // its consequence (the peer tore the stream down).
            match (for_i, for_j) {
                (for_i, Ok(for_j)) => Ok((for_i?, for_j)),
                (_, Err(e)) => Err(e),
            }
        })
    }
}

impl FleetRunner for GossipRunner {
    fn replicas(&self) -> usize {
        self.members.len()
    }

    fn run_round(&mut self) -> Result<RoundStats, ReconError> {
        let round = self.ledger.rounds();
        for (i, j) in self.pairs_for_round(round) {
            let d = self.pair_bound(i, j)?;
            let (for_i, for_j) = self.exchange(i, j, d)?;
            self.members[i].lock().expect("member lock").absorb(for_i.recovered);
            self.members[j].lock().expect("member lock").absorb(for_j.recovered);
            self.ledger.record([i, j], &for_j.stats);
            self.ledger.record([i, j], &for_i.stats);
        }
        Ok(self.ledger.end_round())
    }

    fn converged(&mut self) -> Result<bool, ReconError> {
        let mut states = self.members.iter().map(|member| {
            let member = member.lock().expect("member lock");
            (member.set_hash(), member.len())
        });
        let first = match states.next() {
            Some(first) => first,
            None => return Ok(true),
        };
        Ok(states.all(|state| state == first))
    }

    fn stats(&self) -> &FleetStats {
        self.ledger.stats()
    }
}
