//! Fleet-wide wire accounting, aggregated from per-session [`CommStats`].
//!
//! Every reconciliation session a fleet runs is already metered by the
//! protocol layer ([`CommStats`] charges round envelopes in both directions
//! and exempts control traffic). This module only *sums*: a session's
//! `total_bytes()` is attributed to the round it ran in and to **both** of
//! its participants — each end sent or received every charged byte — so
//! `max_replica_bytes()` exposes exactly the load imbalance that separates a
//! star (the hub touches every byte) from gossip (bytes spread evenly).

use recon_base::comm::CommStats;

/// Wire accounting for one fleet round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Which round this was (0-based).
    pub round: usize,
    /// Reconciliation sessions the round ran.
    pub sessions: u64,
    /// Charged wire bytes across those sessions (both directions).
    pub bytes: u64,
}

/// Cumulative wire accounting for a whole fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Rounds completed.
    pub rounds: usize,
    /// Reconciliation sessions completed (control traffic is uncharged and
    /// not counted).
    pub sessions: u64,
    /// Total charged wire bytes; always equals the sum of `total_bytes()`
    /// over every session's [`CommStats`] (pinned by tests).
    pub total_bytes: u64,
    /// Charged bytes attributed per replica (both ends of a session are
    /// charged its full total). In a star fleet the hub is the last entry.
    pub per_replica_bytes: Vec<u64>,
    /// Per-round breakdown, in round order.
    pub per_round: Vec<RoundStats>,
}

impl FleetStats {
    /// The heaviest replica's attributed bytes — the hub-concentration /
    /// gossip-dispersion signal.
    pub fn max_replica_bytes(&self) -> u64 {
        self.per_replica_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Mutable aggregation state: [`FleetStats`] plus the currently-open round.
#[derive(Debug)]
pub(crate) struct Ledger {
    stats: FleetStats,
    current: RoundStats,
}

impl Ledger {
    pub(crate) fn new(replicas: usize) -> Self {
        let stats = FleetStats { per_replica_bytes: vec![0; replicas], ..FleetStats::default() };
        Self { stats, current: RoundStats::default() }
    }

    /// Charge one session to the open round and to both participants.
    pub(crate) fn record(&mut self, participants: [usize; 2], session: &CommStats) {
        let bytes = session.total_bytes() as u64;
        self.current.sessions += 1;
        self.current.bytes += bytes;
        self.stats.sessions += 1;
        self.stats.total_bytes += bytes;
        for replica in participants {
            self.stats.per_replica_bytes[replica] += bytes;
        }
    }

    /// Close the open round, returning its accounting.
    pub(crate) fn end_round(&mut self) -> RoundStats {
        let round = RoundStats { round: self.stats.rounds, ..self.current };
        self.stats.per_round.push(round);
        self.stats.rounds += 1;
        self.current = RoundStats::default();
        round
    }

    /// Rounds completed so far.
    pub(crate) fn rounds(&self) -> usize {
        self.stats.rounds
    }

    pub(crate) fn stats(&self) -> &FleetStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(bytes_a: usize, bytes_b: usize) -> CommStats {
        CommStats {
            rounds: 1,
            messages: 2,
            bytes_alice_to_bob: bytes_a,
            bytes_bob_to_alice: bytes_b,
        }
    }

    #[test]
    fn ledger_sums_sessions_and_attributes_both_ends() {
        let mut ledger = Ledger::new(3);
        ledger.record([0, 1], &session(100, 10));
        ledger.record([1, 2], &session(200, 20));
        let round = ledger.end_round();
        assert_eq!(round, RoundStats { round: 0, sessions: 2, bytes: 330 });

        ledger.record([0, 2], &session(5, 5));
        let round = ledger.end_round();
        assert_eq!(round, RoundStats { round: 1, sessions: 1, bytes: 10 });

        let stats = ledger.stats();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.sessions, 3);
        assert_eq!(stats.total_bytes, 340);
        assert_eq!(stats.per_replica_bytes, vec![120, 330, 230]);
        assert_eq!(stats.max_replica_bytes(), 330);
        assert_eq!(stats.per_round.len(), 2);
        assert_eq!(
            stats.per_round.iter().map(|r| r.bytes).sum::<u64>(),
            stats.total_bytes,
            "round breakdown must tile the total"
        );
    }

    #[test]
    fn empty_ledger_is_all_zero() {
        let ledger = Ledger::new(2);
        assert_eq!(ledger.stats().total_bytes, 0);
        assert_eq!(ledger.stats().max_replica_bytes(), 0);
    }
}
