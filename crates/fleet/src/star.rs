//! Star topology: a hub daemon reconciling many spokes against one master
//! replica.
//!
//! The hub is a plain [`StoreDaemon`] — the PR-6 store on the PR-5 reactor
//! server — holding the master set as one [`SketchStore`] replica. That is
//! the whole point of the topology: the hub's `O(n)` encode is paid **once**
//! when the replica is built and then amortized across every spoke, because
//! each spoke session is served by cloning the maintained rung bank
//! (`O(d)`), never by rebuilding a digest. The fleet tests pin this with
//! [`recon_set::full_digest_builds`] staying flat in the spoke count.
//!
//! A spoke round is a complete client exchange: connect, reconcile (the
//! spoke's Bob recovers the master set), push the spoke's own delta back
//! with an `Insert`, close. After one round the master holds the union of
//! everything; after two, every spoke does — star convergence is two rounds
//! for any static fleet. Spokes can run the round concurrently
//! ([`StarConfig::spoke_threads`]) against the multi-worker hub.

use crate::member::Member;
use crate::stats::{FleetStats, Ledger, RoundStats};
use crate::FleetRunner;
use recon_base::comm::CommStats;
use recon_base::ReconError;
use recon_runtime::ServerStats;
use recon_store::{SketchStore, StorageBackend, StoreClient, StoreDaemon};
use std::collections::HashSet;
use std::net::SocketAddr;

/// Tuning for a [`StarFleet`].
#[derive(Debug, Clone)]
pub struct StarConfig {
    /// Name of the hub's master replica.
    pub master: String,
    /// Difference bound spokes request; `None` lets the hub size each
    /// session from the spoke's strata estimator.
    pub d_bound: Option<u64>,
    /// Hub reactor workers.
    pub workers: usize,
    /// Concurrent spoke drivers per round (1 = sequential, deterministic
    /// hub mutation order).
    pub spoke_threads: usize,
}

impl Default for StarConfig {
    fn default() -> Self {
        Self { master: "master".to_string(), d_bound: None, workers: 2, spoke_threads: 1 }
    }
}

/// A star fleet: hub daemon + spoke members. See the module docs.
pub struct StarFleet<B: StorageBackend> {
    daemon: StoreDaemon<B>,
    config: StarConfig,
    spokes: Vec<Member>,
    /// Ledger replica indices: spokes `0..n`, hub `n`.
    ledger: Ledger,
}

impl<B: StorageBackend + 'static> StarFleet<B> {
    /// Bind the hub on an ephemeral loopback port, seed the master replica
    /// with `hub_keys` over the wire, and build one spoke per entry of
    /// `spoke_sets` — each sharing the master's replica parameters (fetched
    /// from the `Open` response), so every set hash in the fleet is
    /// comparable.
    pub fn launch(
        store: SketchStore<B>,
        config: StarConfig,
        hub_keys: impl IntoIterator<Item = u64>,
        spoke_sets: impl IntoIterator<Item = HashSet<u64>>,
    ) -> Result<Self, ReconError> {
        let daemon = StoreDaemon::bind("127.0.0.1:0", store, config.workers)?;
        let mut setup = StoreClient::connect(daemon.local_addr())?;
        let params = setup.open(&config.master)?;
        let keys: Vec<u64> = hub_keys.into_iter().collect();
        for chunk in keys.chunks(4096) {
            setup.insert(&config.master, chunk)?;
        }
        setup.close()?;
        let spokes = spoke_sets
            .into_iter()
            .map(|set| Member::from_keys(params.clone(), set))
            .collect::<Result<Vec<_>, ReconError>>()?;
        let ledger = Ledger::new(spokes.len() + 1);
        Ok(Self { daemon, config, spokes, ledger })
    }

    /// The hub's listening address.
    pub fn local_addr(&self) -> SocketAddr {
        self.daemon.local_addr()
    }

    /// The hub's index in [`FleetStats::per_replica_bytes`] (spokes are
    /// `0..replicas()-1`).
    pub fn hub_index(&self) -> usize {
        self.spokes.len()
    }

    /// Spoke `spoke`'s current key set.
    pub fn spoke_keys(&self, spoke: usize) -> &HashSet<u64> {
        self.spokes[spoke].keys()
    }

    /// Spoke `spoke`'s whole-set hash.
    pub fn spoke_hash(&self, spoke: usize) -> u64 {
        self.spokes[spoke].set_hash()
    }

    /// The master replica's `(set_hash, cardinality)`, read from the hub's
    /// incrementally maintained hasher.
    pub fn hub_state(&self) -> Result<(u64, u64), ReconError> {
        let store = self.daemon.store();
        let store = store.lock().expect("store lock");
        let stat = store.stat(&self.config.master)?;
        Ok((stat.set_hash, stat.cardinality))
    }

    /// Insert `key` into spoke `spoke` (churn injection between rounds).
    pub fn spoke_insert(&mut self, spoke: usize, key: u64) -> bool {
        self.spokes[spoke].insert(key)
    }

    /// Remove `key` from spoke `spoke`. Star merges are unions, so the key
    /// returns with the next reconcile if any other replica still holds it.
    pub fn spoke_remove(&mut self, spoke: usize, key: u64) -> bool {
        self.spokes[spoke].remove(key)
    }

    /// Shut the hub down; returns the fleet accounting, the server's serve
    /// counters and the store (when every handle was released).
    pub fn shutdown(self) -> (FleetStats, ServerStats, Option<SketchStore<B>>) {
        let stats = self.ledger.stats().clone();
        let (server, store) = self.daemon.shutdown();
        (stats, server, store)
    }
}

/// One spoke's full round against the hub: reconcile, push the local delta
/// back, merge the recovery. Returns the data session's stats (the delta
/// push is control traffic, uncharged like all control frames).
fn spoke_round(
    addr: SocketAddr,
    master: &str,
    member: &mut Member,
    d_bound: Option<u64>,
) -> Result<CommStats, ReconError> {
    let mut client = StoreClient::connect(addr)?;
    let report = client.reconcile(master, member.keys(), d_bound)?;
    let delta: Vec<u64> = member.keys().difference(&report.recovered).copied().collect();
    if !delta.is_empty() {
        client.insert(master, &delta)?;
    }
    member.absorb(report.recovered);
    client.close()?;
    Ok(report.stats)
}

impl<B: StorageBackend + 'static> FleetRunner for StarFleet<B> {
    fn replicas(&self) -> usize {
        self.spokes.len() + 1
    }

    fn run_round(&mut self) -> Result<RoundStats, ReconError> {
        let addr = self.daemon.local_addr();
        let master = self.config.master.clone();
        let d_bound = self.config.d_bound;
        let hub = self.spokes.len();
        let threads = self.config.spoke_threads.max(1);
        if threads <= 1 || self.spokes.len() <= 1 {
            for spoke in 0..self.spokes.len() {
                let stats = spoke_round(addr, &master, &mut self.spokes[spoke], d_bound)?;
                self.ledger.record([spoke, hub], &stats);
            }
        } else {
            let chunk = self.spokes.len().div_ceil(threads);
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .spokes
                    .chunks_mut(chunk)
                    .map(|spokes| {
                        let master = master.clone();
                        scope.spawn(move || {
                            spokes
                                .iter_mut()
                                .map(|member| spoke_round(addr, &master, member, d_bound))
                                .collect::<Result<Vec<_>, ReconError>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| {
                        handle.join().map_err(|_| {
                            ReconError::Transport("star spoke thread panicked".into())
                        })?
                    })
                    .collect::<Result<Vec<_>, ReconError>>()
            })?;
            let mut spoke = 0;
            for batch in results {
                for stats in batch {
                    self.ledger.record([spoke, hub], &stats);
                    spoke += 1;
                }
            }
        }
        Ok(self.ledger.end_round())
    }

    fn converged(&mut self) -> Result<bool, ReconError> {
        let (hub_hash, hub_cardinality) = self.hub_state()?;
        Ok(self
            .spokes
            .iter()
            .all(|spoke| spoke.set_hash() == hub_hash && spoke.len() as u64 == hub_cardinality))
    }

    fn stats(&self) -> &FleetStats {
        self.ledger.stats()
    }
}
