//! One fleet member: a [`Replica`] (cached per-rung IBLT banks, A-side
//! strata, incremental set hash) plus the **B-side** strata estimator a peer
//! needs to size a session against us.
//!
//! The store's [`Replica`] maintains an A-side [`StrataEstimator`] so it can
//! size sessions *it serves*. In a symmetric fleet every member is also a
//! client, and [`Replica::estimate_bound`] merges an A-side with a **B-side**
//! estimator — merging two A-sides would cancel the common elements with the
//! wrong sign and estimate garbage. So a [`Member`] maintains both sides over
//! the same key set, each updated in `O(k)` per mutation.

use recon_base::ReconError;
use recon_estimator::{Side, StrataEstimator};
use recon_protocol::{AmplifiedSender, Envelope, Party};
use recon_set::session::{iblt_known_bob, TAG_DIGEST};
use recon_set::SetDigest;
use recon_store::{Replica, ReplicaParams};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// A fleet member: one replica plus its client-side estimator. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct Member {
    replica: Replica,
    /// B-side mirror of the replica's key set, for peers sizing sessions
    /// against us via [`Replica::estimate_bound`].
    strata_b: StrataEstimator,
}

impl Member {
    /// An empty member with the given (fleet-shared) parameters.
    pub fn new(params: ReplicaParams) -> Result<Self, ReconError> {
        let strata_b = StrataEstimator::new(&params.strata_config());
        Ok(Self { replica: Replica::new(params)?, strata_b })
    }

    /// A member seeded with `keys`.
    pub fn from_keys(
        params: ReplicaParams,
        keys: impl IntoIterator<Item = u64>,
    ) -> Result<Self, ReconError> {
        let mut member = Self::new(params)?;
        member.absorb(keys);
        Ok(member)
    }

    /// The member's (fleet-shared) parameters.
    pub fn params(&self) -> &ReplicaParams {
        self.replica.params()
    }

    /// The current key set.
    pub fn keys(&self) -> &HashSet<u64> {
        self.replica.keys()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.replica.len()
    }

    /// `true` if the member holds no keys.
    pub fn is_empty(&self) -> bool {
        self.replica.is_empty()
    }

    /// The incremental whole-set hash — equal hashes across the fleet (all
    /// members share one seed) is the convergence criterion.
    pub fn set_hash(&self) -> u64 {
        self.replica.set_hash()
    }

    /// Insert `key` into the set and every maintained sketch; `false` if
    /// already present.
    pub fn insert(&mut self, key: u64) -> bool {
        if !self.replica.insert(key) {
            return false;
        }
        self.strata_b.update(key, Side::B);
        true
    }

    /// Remove `key`; `false` if absent.
    pub fn remove(&mut self, key: u64) -> bool {
        if !self.replica.remove(key) {
            return false;
        }
        self.strata_b.remove(key, Side::B);
        true
    }

    /// Union `keys` into the set; returns how many were new.
    pub fn absorb(&mut self, keys: impl IntoIterator<Item = u64>) -> usize {
        keys.into_iter().filter(|&key| self.insert(key)).count()
    }

    /// The B-side estimator over the current keys.
    pub fn strata_b(&self) -> &StrataEstimator {
        &self.strata_b
    }

    /// Estimate the symmetric difference against `peer` and pick the ladder
    /// rung that covers it (with the standard 2× headroom): our A-side
    /// merged with the peer's B-side. Symmetric in the pair, so one call
    /// sizes both directions of an exchange.
    pub fn estimate_bound(&self, peer: &Member) -> Result<(usize, usize), ReconError> {
        self.replica.estimate_bound(peer.strata_b())
    }

    /// Serve the cached digest covering difference bound `d` (the attempt-0
    /// fast path: one bank clone, `O(d)`, no rebuild).
    pub(crate) fn digest(&self, d: usize) -> Option<(usize, SetDigest)> {
        self.replica.digest(d)
    }

    /// Build a retry digest from scratch (the rare amplification path).
    pub(crate) fn rebuild_digest(&self, d: usize, attempt: u64) -> SetDigest {
        self.replica.rebuild_digest(d, attempt)
    }

    /// Bob's side of a pairwise session: a completely ordinary
    /// [`iblt_known_bob`] over the current keys, so fleet sessions stay
    /// byte-identical to cold two-party sessions.
    pub fn bob_party(&self) -> impl Party<Output = HashSet<u64>> + Send + 'static {
        iblt_known_bob(self.keys(), &self.params().session_config())
    }
}

/// Alice's side of a pairwise session, served from `member`'s **cached**
/// bank: attempt 0 clones the maintained rung (never counted by
/// [`recon_set::full_digest_builds`]). Retries rebuild from scratch under
/// fresh hash functions — and since a rebuild is not confined to the ladder,
/// each one **doubles** the bound (like
/// [`unknown_alice`](recon_set::session::unknown_alice)), so a strata
/// underestimate costs extra attempts instead of failing the session. The
/// member is locked only while an envelope is built, so a shared member can
/// serve many sessions.
pub(crate) fn cached_alice(
    member: &Arc<Mutex<Member>>,
    d: usize,
) -> Result<impl Party<Output = ()> + Send + 'static, ReconError> {
    let max_attempts = member.lock().expect("member lock").params().max_attempts;
    let member = Arc::clone(member);
    AmplifiedSender::new(max_attempts, move |attempt| {
        let member = member.lock().expect("member lock");
        if attempt == 0 {
            let (_, digest) = member.digest(d).ok_or_else(|| {
                ReconError::InvalidInput(format!(
                    "difference bound {d} exceeds the ladder {:?}",
                    member.params().ladder
                ))
            })?;
            Ok(Envelope::round(TAG_DIGEST, "set digest (IBLT)", &digest))
        } else {
            let digest = member.rebuild_digest(d << attempt, attempt);
            Ok(Envelope::round(TAG_DIGEST, "set digest (replica)", &digest))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ReplicaParams {
        ReplicaParams { seed: 0xF1EE7, ladder: vec![8, 32, 128], max_attempts: 4 }
    }

    #[test]
    fn b_side_strata_tracks_the_key_set() {
        let mut member = Member::from_keys(params(), 0..300).unwrap();
        member.remove(5);
        member.remove(6);
        member.insert(1000);
        let mut fresh = StrataEstimator::new(&params().strata_config());
        for &key in member.keys() {
            fresh.update(key, Side::B);
        }
        assert_eq!(member.strata_b(), &fresh);
    }

    #[test]
    fn estimate_bound_is_symmetric_and_covers_the_difference() {
        let a = Member::from_keys(params(), 0..500).unwrap();
        let b = Member::from_keys(params(), 10..505).unwrap(); // diff = 15
        let (est_ab, rung_ab) = a.estimate_bound(&b).unwrap();
        let (est_ba, rung_ba) = b.estimate_bound(&a).unwrap();
        assert_eq!(est_ab, est_ba, "strata merge is symmetric");
        assert_eq!(rung_ab, rung_ba);
        assert!(params().ladder.contains(&rung_ab));
    }

    #[test]
    fn absorb_counts_only_new_keys() {
        let mut member = Member::from_keys(params(), 0..10).unwrap();
        assert_eq!(member.absorb(5..15), 5);
        assert_eq!(member.len(), 15);
    }

    #[test]
    fn equal_sets_have_equal_hashes_regardless_of_history() {
        let a = Member::from_keys(params(), 0..100).unwrap();
        let mut b = Member::from_keys(params(), 50..150).unwrap();
        for key in 0..50 {
            b.insert(key);
        }
        for key in 100..150 {
            b.remove(key);
        }
        assert_eq!(a.set_hash(), b.set_hash());
        assert_ne!(Member::from_keys(params(), 0..99).unwrap().set_hash(), a.set_hash());
    }
}
