//! # recon-fleet
//!
//! N-party reconciliation at fleet scale, layered on the endpoint/reactor/
//! store stack: many replicas of one logical set driven to a provably common
//! state (equal incremental set hashes) through ordinary two-party sessions.
//!
//! Two topologies, one [`FleetRunner`] API:
//!
//! * **Star** ([`StarFleet`]) — a hub [`StoreDaemon`](recon_store::StoreDaemon)
//!   holds the master replica; every spoke runs a client round (reconcile,
//!   push its delta back, merge). The hub's `O(n)` sketch encode is paid once
//!   and amortized across all spokes — sessions are served by cloning the
//!   maintained rung bank, pinned by
//!   [`full_digest_builds`](recon_set::full_digest_builds) staying flat in
//!   the spoke count. Converges in two rounds for a static fleet, but
//!   concentrates every wire byte on the hub.
//! * **Gossip** ([`GossipRunner`]) — deterministic seeded rounds of random
//!   pairwise exchanges (in-process or over real TCP), each a bidirectional
//!   pair of cached-bank sessions. Takes `O(log n)` rounds whp, but spreads
//!   the bytes evenly and has no distinguished party.
//!
//! [`FleetStats`] aggregates the per-session
//! [`CommStats`](recon_base::comm::CommStats) the protocol layer already
//! meters — total bytes, sessions, per-round and per-replica attribution —
//! so the star/gossip trade-off (rounds vs. hub concentration) is measured,
//! not asserted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod member;
pub mod star;
pub mod stats;

pub use gossip::{GossipConfig, GossipRunner, GossipTransport};
pub use member::Member;
pub use star::{StarConfig, StarFleet};
pub use stats::{FleetStats, RoundStats};

use recon_base::ReconError;

/// The shared surface of a fleet topology: run rounds, detect convergence,
/// account the wire.
pub trait FleetRunner {
    /// Number of replicas participating (for a star: spokes + the hub).
    fn replicas(&self) -> usize;

    /// Run one full round of the topology's schedule.
    fn run_round(&mut self) -> Result<RoundStats, ReconError>;

    /// Whether every replica currently holds the same set, detected by the
    /// incrementally maintained whole-set hashes (plus cardinality as a
    /// sanity cross-check).
    fn converged(&mut self) -> Result<bool, ReconError>;

    /// The accounting so far.
    fn stats(&self) -> &FleetStats;

    /// Run rounds until [`FleetRunner::converged`], up to `max_rounds`;
    /// returns the final accounting. Fails with
    /// [`ReconError::RetriesExhausted`] if the budget runs out first.
    fn run_to_convergence(&mut self, max_rounds: usize) -> Result<FleetStats, ReconError> {
        for _ in 0..max_rounds {
            if self.converged()? {
                return Ok(self.stats().clone());
            }
            self.run_round()?;
        }
        if self.converged()? {
            Ok(self.stats().clone())
        } else {
            Err(ReconError::RetriesExhausted { attempts: max_rounds })
        }
    }
}
