//! Endpoint multiplexing: N concurrent sessions over ONE framed link vs one
//! link (and its framing) per session vs the raw unframed `MemoryLink` path.
//!
//! The wall-time comparison shows what the multiplexed `Endpoint` costs over
//! the blocking driver; the printed byte accounting records the baseline the
//! ROADMAP's connection-reuse item is about — how many framed bytes per
//! session a shared link saves versus a link per session.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_bench::set_pair;
use recon_estimator::L0Config;
use recon_protocol::{
    drive_pair, Amplification, Endpoint, MemoryTransport, Role, SessionBuilder, SessionConfig,
    SessionId, Transport,
};
use recon_set::session as set_session;
use std::collections::HashSet;
use std::hint::black_box;

const SESSIONS: usize = 8;
const N: usize = 10_000;
const D: usize = 32;
const BOUND: usize = D + 4;

fn workloads() -> Vec<(HashSet<u64>, HashSet<u64>)> {
    (0..SESSIONS).map(|i| set_pair(N, D, 0xB00 + i as u64)).collect()
}

fn config(i: usize) -> SessionConfig {
    SessionConfig {
        seed: 0x77AA ^ i as u64,
        amplification: Amplification::replicate(3),
        estimator: L0Config::default(),
    }
}

/// All sessions through one endpoint pair on one framed transport. Returns the
/// total framed bytes that crossed the shared link.
fn run_multiplexed(pairs: &[(HashSet<u64>, HashSet<u64>)]) -> u64 {
    let (transport_a, transport_b) = MemoryTransport::pair();
    let mut alice_end = Endpoint::new(transport_a);
    let mut bob_end = Endpoint::new(transport_b);
    for (i, (alice, bob)) in pairs.iter().enumerate() {
        let cfg = config(i);
        alice_end
            .register(
                i as SessionId,
                Role::Alice,
                set_session::iblt_known_alice(alice, BOUND, &cfg).unwrap(),
            )
            .unwrap();
        bob_end
            .register(i as SessionId, Role::Bob, set_session::iblt_known_bob(bob, &cfg))
            .unwrap();
    }
    drive_pair(&mut alice_end, &mut bob_end).unwrap();
    let mut framed = bob_end.transport().bytes_framed_in() + bob_end.transport().bytes_framed_out();
    for i in 0..pairs.len() as SessionId {
        black_box(bob_end.take_outcome::<HashSet<u64>>(i).unwrap().unwrap());
        alice_end.close(i);
    }
    // Count the retirement Fins too: they travel on the same link.
    framed =
        framed.max(bob_end.transport().bytes_framed_in() + bob_end.transport().bytes_framed_out());
    framed
}

/// One framed transport (and endpoint pair) per session — connection-per-
/// reconciliation, the shape this PR's API exists to replace. Returns total
/// framed bytes across all links.
fn run_one_link_per_session(pairs: &[(HashSet<u64>, HashSet<u64>)]) -> u64 {
    let mut framed = 0;
    for (i, (alice, bob)) in pairs.iter().enumerate() {
        let cfg = config(i);
        let (transport_a, transport_b) = MemoryTransport::pair();
        let mut alice_end = Endpoint::new(transport_a);
        let mut bob_end = Endpoint::new(transport_b);
        alice_end
            .register(0, Role::Alice, set_session::iblt_known_alice(alice, BOUND, &cfg).unwrap())
            .unwrap();
        bob_end.register(0, Role::Bob, set_session::iblt_known_bob(bob, &cfg)).unwrap();
        drive_pair(&mut alice_end, &mut bob_end).unwrap();
        black_box(bob_end.take_outcome::<HashSet<u64>>(0).unwrap().unwrap());
        alice_end.close(0);
        framed += bob_end.transport().bytes_framed_in() + bob_end.transport().bytes_framed_out();
    }
    framed
}

/// The raw blocking path: no framing at all, one `MemoryLink` per session.
fn run_memory_link(pairs: &[(HashSet<u64>, HashSet<u64>)]) -> usize {
    let mut metered = 0;
    for (i, (alice, bob)) in pairs.iter().enumerate() {
        let cfg = config(i);
        let outcome = SessionBuilder::new(cfg.seed)
            .amplification(cfg.amplification)
            .run(
                set_session::iblt_known_alice(alice, BOUND, &cfg).unwrap(),
                set_session::iblt_known_bob(bob, &cfg),
            )
            .unwrap();
        metered += outcome.stats.total_bytes();
        black_box(outcome);
    }
    metered
}

fn bench_multiplexing(c: &mut Criterion) {
    let pairs = workloads();

    // Record the byte baselines once, outside the timing loops.
    let metered = run_memory_link(&pairs);
    let per_link = run_one_link_per_session(&pairs);
    let multiplexed = run_multiplexed(&pairs);
    println!(
        "endpoint_multiplex baseline: {SESSIONS} sessions x {N} keys (d={D}); \
         {metered} metered protocol bytes; {per_link} framed bytes over {SESSIONS} links vs \
         {multiplexed} framed bytes over 1 link (framing overhead {} resp. {} bytes; \
         the shared link replaces {SESSIONS} connections with 1)",
        per_link as i64 - metered as i64,
        multiplexed as i64 - metered as i64,
    );

    let mut group = c.benchmark_group("endpoint_multiplex");
    group.bench_function(BenchmarkId::new("memory_link_sequential", SESSIONS), |b| {
        b.iter(|| black_box(run_memory_link(&pairs)));
    });
    group.bench_function(BenchmarkId::new("one_framed_link_per_session", SESSIONS), |b| {
        b.iter(|| black_box(run_one_link_per_session(&pairs)));
    });
    group.bench_function(BenchmarkId::new("multiplexed_one_link", SESSIONS), |b| {
        b.iter(|| black_box(run_multiplexed(&pairs)));
    });
    group.finish();
}

criterion_group!(benches, bench_multiplexing);
criterion_main!(benches);
