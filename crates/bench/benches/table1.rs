//! Experiment E-T1: the Table 1 comparison, measured. Binary-database workload with
//! `h = Θ(u)`, `n = Θ(su)`, small `d`; one bench per protocol so Criterion reports
//! the computation-time ordering (Thm 3.3 fastest … Thm 3.7 slowest among the
//! one-round protocols), while `experiments table1` reports the communication
//! ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_apps::database::SosProtocolKind;
use recon_bench::database_pair;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_database_workload");
    group.sample_size(10);
    let (s, u) = (256usize, 128u32);
    for d in [4usize, 16] {
        let (alice, bob) = database_pair(s, u, d, d as u64);
        for (name, kind) in [
            ("naive_thm33", SosProtocolKind::Naive),
            ("iblt_of_iblts_thm35", SosProtocolKind::IbltOfIblts),
            ("cascading_thm37", SosProtocolKind::Cascading),
            ("multiround_thm39", SosProtocolKind::MultiRound),
        ] {
            group.bench_with_input(BenchmarkId::new(name, d), &d, |b, &d| {
                b.iter(|| black_box(bob.reconcile_from(&alice, d, kind, 7).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
