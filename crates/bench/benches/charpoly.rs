//! Experiment E-2.3: characteristic-polynomial set reconciliation (Theorem 2.3) —
//! the `O(nd + d^3)` computation cost that motivates IBLTs, swept over `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_bench::set_pair;
use recon_set::{reconcile_known, reconcile_known_charpoly};
use std::hint::black_box;

fn bench_charpoly_vs_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("charpoly_reconciliation_vs_d");
    group.sample_size(10);
    for d in [4usize, 16, 64, 128] {
        let (alice, bob) = set_pair(5_000, d, 100 + d as u64);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(reconcile_known_charpoly(&alice, &bob, d, 3).unwrap()));
        });
    }
    group.finish();
}

fn bench_charpoly_vs_iblt(c: &mut Criterion) {
    // The computational gap the paper highlights: same workload, both protocols.
    let mut group = c.benchmark_group("charpoly_vs_iblt_same_workload");
    group.sample_size(10);
    let d = 64;
    let (alice, bob) = set_pair(20_000, d, 5);
    group.bench_function("charpoly", |b| {
        b.iter(|| black_box(reconcile_known_charpoly(&alice, &bob, d, 3).unwrap()));
    });
    group.bench_function("iblt", |b| {
        b.iter(|| black_box(reconcile_known(&alice, &bob, d, 3).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_charpoly_vs_d, bench_charpoly_vs_iblt);
criterion_main!(benches);
