//! Experiments E-4.1 / E-4.3: the general-graph protocols of Section 4. The
//! exhaustive reconciliation time explodes with `d` even on 7-vertex graphs, which
//! is exactly the motivation for the Section 5 schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_base::rng::Xoshiro256;
use recon_graph::general;
use recon_graph::Graph;
use std::hint::black_box;

fn bench_isomorphism_fingerprint(c: &mut Criterion) {
    let mut rng = Xoshiro256::new(1);
    let a = Graph::gnp(7, 0.5, &mut rng);
    let b = a.relabel(&[3, 1, 0, 6, 2, 5, 4]);
    c.bench_function("isomorphism_fingerprint_n7", |bch| {
        bch.iter(|| black_box(general::isomorphism_protocol(&a, &b, 5)));
    });
}

fn bench_exhaustive_reconciliation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_graph_reconciliation_n7");
    group.sample_size(10);
    let mut rng = Xoshiro256::new(2);
    let base = Graph::gnp(7, 0.4, &mut rng);
    for d in [1usize, 2] {
        let alice = base.perturb(d, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(general::reconcile_exhaustive(&alice, &base, d, 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_isomorphism_fingerprint, bench_exhaustive_reconciliation);
criterion_main!(benches);
