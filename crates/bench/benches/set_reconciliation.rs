//! Experiment E-2.2: IBLT set reconciliation (Corollary 2.2) — time vs `n` and `d`.
//! The paper claims `O(n)` time and `O(d log u)` communication; the companion
//! communication numbers are printed by `experiments set`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_bench::set_pair;
use recon_set::reconcile_known;
use std::hint::black_box;

fn bench_vs_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_reconciliation_vs_d");
    for d in [4usize, 16, 64, 256, 1024] {
        let (alice, bob) = set_pair(100_000, d, d as u64);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(reconcile_known(&alice, &bob, d, 7).unwrap()));
        });
    }
    group.finish();
}

fn bench_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_reconciliation_vs_n");
    for n in [10_000usize, 50_000, 200_000] {
        let (alice, bob) = set_pair(n, 32, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(reconcile_known(&alice, &bob, 32, 9).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_d, bench_vs_n);
criterion_main!(benches);
