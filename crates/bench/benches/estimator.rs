//! Experiment E-3.1: set difference estimators (Theorem 3.1 vs the strata baseline):
//! update and query throughput. Accuracy and sketch sizes are reported by
//! `experiments estimator`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_estimator::{L0Config, L0Estimator, Side, StrataConfig, StrataEstimator};
use std::hint::black_box;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_update_100k_elements");
    group.bench_function("l0", |b| {
        b.iter(|| {
            let mut est = L0Estimator::new(&L0Config::default().with_seed(1));
            for x in 0..100_000u64 {
                est.update(x, Side::A);
            }
            black_box(est)
        });
    });
    group.bench_function("strata", |b| {
        b.iter(|| {
            let mut est = StrataEstimator::new(&StrataConfig::default().with_seed(1));
            for x in 0..100_000u64 {
                est.update(x, Side::A);
            }
            black_box(est)
        });
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_merge_and_query");
    for d in [16usize, 256, 4096] {
        let l0_cfg = L0Config::default().with_seed(2);
        let strata_cfg = StrataConfig::default().with_seed(2);
        let mut a_l0 = L0Estimator::new(&l0_cfg);
        let mut b_l0 = L0Estimator::new(&l0_cfg);
        let mut a_st = StrataEstimator::new(&strata_cfg);
        let mut b_st = StrataEstimator::new(&strata_cfg);
        for x in 0..50_000u64 {
            a_l0.update(x, Side::A);
            b_l0.update(x + d as u64, Side::B);
            a_st.update(x, Side::A);
            b_st.update(x + d as u64, Side::B);
        }
        group.bench_with_input(BenchmarkId::new("l0", d), &d, |bch, _| {
            bch.iter(|| black_box(a_l0.merge(&b_l0).unwrap().estimate()));
        });
        group.bench_with_input(BenchmarkId::new("strata", d), &d, |bch, _| {
            bch.iter(|| black_box(a_st.merge(&b_st).unwrap().estimate()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_query);
criterion_main!(benches);
