//! Decode success and retry cost vs table sizing, with and without the
//! GF(2) decode-rescue pipeline — the measurement behind the retightened
//! session sizing (`IbltConfig::tuned_for_u64_keys`).
//!
//! For each cells-per-difference factor from 1.1× to 1.5× this runs many
//! deterministic reconciliation instances (d = 64 differences over a shared
//! set, Bob's keys fed to the rescue as candidates) and reports:
//!
//! * the attempt-0 decode success rate, and
//! * the mean number of amplification attempts a session would spend
//!   (fresh-seeded retries, like the session drivers' `Amplification`),
//!
//! once with the rescue enabled and once peel-only (`rescue: None`). The mean
//! attempts are recorded as `iblt_decode_success_vs_sizing/{mode}/{factor}`
//! (the "ns" field carries attempts — a deterministic, dimensionless cost) so
//! the `bench-check` gate catches a rescue regression as a blown-up retry
//! count. Two extra ids pin the serialized digest size of the tuned vs the
//! classic layout at d = 64, so the sizing itself cannot silently regress.
//!
//! The bench also asserts outright that the rescue strictly dominates the
//! pure peel at every factor — same instances, never a lower success rate.

use criterion::{black_box, record_measurement, smoke_mode, write_json_report};
use recon_base::rng::{split_seed, Xoshiro256};
use recon_iblt::{Iblt, IbltConfig};

const D: usize = 64;
const SHARED: usize = 1_000;
const MAX_ATTEMPTS: u64 = 6;

/// Build the subtracted table for one instance: `D` differences (1/4 positive,
/// 3/4 negative) over `SHARED` cancelled keys. Returns the table and Bob's
/// full key list (the rescue candidates).
fn instance(cfg: &IbltConfig, cells: usize, seed: u64) -> (Iblt, Vec<u64>) {
    let mut rng = Xoshiro256::new(seed);
    let mut table = Iblt::with_cells(cells, cfg);
    let mut bob = Vec::with_capacity(SHARED + 3 * D / 4);
    for _ in 0..SHARED {
        let x = rng.next_u64();
        table.insert_u64(x);
        bob.push(x);
    }
    for _ in 0..D / 4 {
        table.insert_u64(rng.next_u64());
    }
    for _ in 0..(3 * D / 4) {
        let x = rng.next_u64();
        bob.push(x);
    }
    for &x in &bob {
        table.delete_u64(x);
    }
    (table, bob)
}

/// One decode attempt; `rescue` selects the pipeline under test.
fn attempt_succeeds(cells: usize, rescue: bool, seed: u64) -> bool {
    let cfg = if rescue {
        IbltConfig::for_u64_keys(seed).with_hash_count(3)
    } else {
        IbltConfig::for_u64_keys(seed).with_hash_count(3).with_rescue(None)
    };
    let (mut table, bob) = instance(&cfg, cells, split_seed(seed, 0xDA7A));
    let decoded = table.decode_in_place_with_candidates_u64(bob.iter().copied());
    black_box(decoded.complete)
}

/// Success rate of attempt 0 and mean fresh-seeded attempts until success
/// (failing all `MAX_ATTEMPTS` charges the full cap, like a failed session).
fn measure(cells: usize, rescue: bool, trials: u64) -> (f64, f64) {
    let mut first_successes = 0u64;
    let mut total_attempts = 0u64;
    // Both modes run the very same instances (same seeds), so the domination
    // assertion below is structural — whenever the peel completes, the
    // rescue-enabled decode of the identical table completes too.
    for trial in 0..trials {
        let trial_seed = split_seed(0x512E, trial);
        let mut attempts = MAX_ATTEMPTS;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt_succeeds(cells, rescue, split_seed(trial_seed, attempt)) {
                attempts = attempt + 1;
                if attempt == 0 {
                    first_successes += 1;
                }
                break;
            }
        }
        total_attempts += attempts;
    }
    (first_successes as f64 / trials as f64, total_attempts as f64 / trials as f64)
}

fn main() {
    let trials: u64 = if smoke_mode() { 40 } else { 400 };
    for factor in [1.1f64, 1.2, 1.3, 1.4, 1.5] {
        let cells = (factor * D as f64).ceil() as usize;
        let (peel_rate, peel_attempts) = measure(cells, false, trials);
        let (rescue_rate, rescue_attempts) = measure(cells, true, trials);
        println!(
            "factor {factor:.1} ({cells} cells): peel {:5.1}% / {peel_attempts:.2} attempts, \
             rescue {:5.1}% / {rescue_attempts:.2} attempts",
            peel_rate * 100.0,
            rescue_rate * 100.0,
        );
        assert!(
            rescue_rate >= peel_rate && rescue_attempts <= peel_attempts,
            "rescue must strictly dominate peel-only at factor {factor:.1}"
        );
        record_measurement(
            &format!("iblt_decode_success_vs_sizing/peel/{factor:.1}"),
            peel_attempts,
            trials,
            None,
            None,
        );
        record_measurement(
            &format!("iblt_decode_success_vs_sizing/rescue/{factor:.1}"),
            rescue_attempts,
            trials,
            None,
            None,
        );
    }

    // Pin the digest footprint of the retightened sizing against the classic
    // one: both deterministic constants, so any sizing change shows up as a
    // baseline diff (and a >3× blow-up fails the gate).
    let classic = IbltConfig::for_u64_keys(0);
    let tuned = IbltConfig::tuned_for_u64_keys(0);
    let classic_bytes = classic.serialized_len(classic.total_cells_for(D));
    let tuned_bytes = tuned.serialized_len(tuned.total_cells_for(D));
    println!("digest bytes at d = {D}: classic {classic_bytes}, tuned {tuned_bytes}");
    assert!(tuned_bytes < classic_bytes, "the tuned layout must be strictly smaller");
    record_measurement(
        "iblt_decode_success_vs_sizing/wire_bytes/classic",
        classic_bytes as f64,
        1,
        None,
        None,
    );
    record_measurement(
        "iblt_decode_success_vs_sizing/wire_bytes/tuned",
        tuned_bytes as f64,
        1,
        None,
        None,
    );
    write_json_report();
}
