//! Daemon-served reconciliation (cached, incrementally maintained sketches)
//! vs a cold per-session digest rebuild — both over the same TCP + reactor
//! serving stack, so the only difference is how the Alice side obtains its
//! digest: `O(d)` from the [`SketchStore`]'s maintained rung vs `O(n)` from
//! [`iblt_known_alice`] hashing every resident key per connection.
//!
//! One iteration is one full client lifetime: connect, reconcile a `d = 16`
//! drift under bound 20 (the store's lowest ladder rung is 20, so both legs
//! serve byte-identical digests), verify, close. The crossover this bench
//! tracks: the daemon's fixed control-channel overhead loses at small `n` and
//! wins as soon as `O(n)` per-session hashing dominates — decisively so at
//! `n = 10^5`.
//!
//! [`iblt_known_alice`]: recon_set::session::iblt_known_alice

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_bench::set_pair;
use recon_protocol::Role;
use recon_runtime::{connect_endpoint, drive_endpoint, ReactorConfig, Server, ServerConfig};
use recon_store::{MemoryBackend, SketchStore, StoreClient, StoreConfig, StoreDaemon};
use std::collections::HashSet;
use std::hint::black_box;
use std::net::SocketAddr;
use std::time::Duration;

const D: usize = 16;
const BOUND: usize = 20;

/// Cold leg: the PR 5 serving shape — one Alice per connection, digest built
/// from the full key set at registration time.
struct ColdService {
    keys: HashSet<u64>,
    config: recon_protocol::SessionConfig,
}

impl recon_runtime::TcpService for ColdService {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut recon_runtime::TcpEndpoint,
    ) -> Result<(), recon_base::ReconError> {
        let alice = recon_set::session::iblt_known_alice(&self.keys, BOUND, &self.config)?;
        endpoint.register(0, Role::Alice, alice)
    }
}

fn run_cold_client(addr: SocketAddr, local: &HashSet<u64>, config: &recon_protocol::SessionConfig) {
    let mut endpoint = connect_endpoint(addr).expect("connect");
    let bob = recon_set::session::iblt_known_bob(local, config);
    endpoint.register(0, Role::Bob, bob).expect("register");
    let mut recovered = 0usize;
    drive_endpoint(&mut endpoint, &ReactorConfig::default(), |endpoint| {
        match endpoint.take_outcome::<HashSet<u64>>(0) {
            Some(outcome) => {
                recovered = outcome.expect("session").recovered.len();
                Ok(true)
            }
            None => Ok(false),
        }
    })
    .expect("drive");
    black_box(recovered);
}

fn bench_cached_reconcile(c: &mut Criterion) {
    let mut group = c.benchmark_group("cached_reconcile");
    for n in [10_000usize, 100_000] {
        let (authority, local) = set_pair(n, D, 0xCA_C4ED ^ n as u64);
        let authority_keys: Vec<u64> = authority.iter().copied().collect();

        // Ladder starts at BOUND so the daemon's lowest rung serves exactly
        // the digest the cold leg builds — byte-identical wire traffic.
        let store_config =
            StoreConfig::default().with_seed(0xCAC4_ED5E ^ n as u64).with_ladder(vec![BOUND, 256]);
        let mut store = SketchStore::open(MemoryBackend::new(), store_config).expect("open");
        store.open_replica("bench").expect("replica");
        for chunk in authority_keys.chunks(4096) {
            store.insert("bench", chunk).expect("preload");
        }
        let params = store.params("bench").expect("params");
        let session_config = params.session_config();

        let daemon = StoreDaemon::bind("127.0.0.1:0", store, 1).expect("daemon bind");
        let daemon_addr = daemon.local_addr();
        group.bench_with_input(BenchmarkId::new("daemon", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut client = StoreClient::connect(daemon_addr).expect("connect");
                let report =
                    client.reconcile("bench", &local, Some(BOUND as u64)).expect("reconcile");
                black_box(report.recovered.len());
                client.close().expect("close");
            })
        });
        let (stats, _) = daemon.shutdown();
        assert_eq!(stats.failed, 0, "daemon leg must close cleanly: {stats:?}");

        let server_config =
            ServerConfig::new().workers(1).session_deadline(Some(Duration::from_secs(30)));
        let cold_keys = authority.clone();
        let cold_session = session_config.clone();
        let server = Server::bind("127.0.0.1:0", server_config, move |_| ColdService {
            keys: cold_keys.clone(),
            config: cold_session.clone(),
        })
        .expect("server bind");
        let cold_addr = server.local_addr();
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |bencher, _| {
            bencher.iter(|| run_cold_client(cold_addr, &local, &session_config))
        });
        let stats = server.shutdown();
        assert_eq!(stats.failed, 0, "cold leg must close cleanly: {stats:?}");
    }
    group.finish();
}

criterion_group!(benches, bench_cached_reconcile);
criterion_main!(benches);
