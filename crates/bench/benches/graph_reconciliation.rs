//! Experiments E-5.2 / E-5.6: random-graph reconciliation with the two signature
//! schemes of Section 5, timed over `n` and `d`. Success rates, separation
//! statistics and communication are reported by `experiments graph` and
//! `experiments separation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_base::rng::Xoshiro256;
use recon_graph::degree_neighborhood::{self, DegreeNeighborhoodParams};
use recon_graph::degree_order::{self, DegreeOrderParams};
use recon_graph::Graph;
use std::hint::black_box;

fn bench_degree_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("degree_order_reconciliation");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let mut rng = Xoshiro256::new(n as u64);
        let base = Graph::gnp(n, 0.35, &mut rng);
        let params = DegreeOrderParams { h: 48.min(n / 4), seed: 3 };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(degree_order::reconcile(&base, &base, 4, &params)));
        });
    }
    group.finish();
}

fn bench_degree_neighborhood(c: &mut Criterion) {
    let mut group = c.benchmark_group("degree_neighborhood_reconciliation");
    group.sample_size(10);
    for n in [96usize, 160] {
        let p = 0.12;
        let mut rng = Xoshiro256::new(n as u64);
        let base = Graph::gnp(n, p, &mut rng);
        let alice = base.perturb(1, &mut rng);
        let params = DegreeNeighborhoodParams::for_gnp(n, p, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(degree_neighborhood::reconcile(&alice, &base, 2, &params)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_degree_order, bench_degree_neighborhood);
criterion_main!(benches);
