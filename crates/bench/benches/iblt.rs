//! IBLT micro-benchmarks and ablations: insert/decode throughput, key-width
//! sensitivity (the nested protocols carry wide keys), partitioned sizing factor
//! (the constant behind Theorem 2.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_base::rng::Xoshiro256;
use recon_iblt::{Iblt, IbltConfig};
use std::hint::black_box;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("iblt_insert_10k_keys");
    for key_bytes in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(key_bytes), &key_bytes, |b, &kb| {
            let cfg = IbltConfig::for_key_bytes(kb, 7);
            let mut rng = Xoshiro256::new(1);
            let keys: Vec<Vec<u8>> =
                (0..10_000).map(|_| (0..kb).map(|_| rng.next_u64() as u8).collect()).collect();
            b.iter(|| {
                let mut table = Iblt::with_expected_diff(64, &cfg);
                for k in &keys {
                    table.insert(k);
                }
                black_box(table)
            });
        });
    }
    group.finish();
}

fn bench_subtract_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("iblt_subtract_and_decode");
    for d in [8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let cfg = IbltConfig::for_u64_keys(3);
            let mut alice = Iblt::with_expected_diff(d, &cfg);
            let mut bob = Iblt::with_expected_diff(d, &cfg);
            for x in 0..50_000u64 {
                alice.insert_u64(x);
                bob.insert_u64(x + d as u64);
            }
            b.iter(|| {
                let diff = alice.subtract(&bob).unwrap();
                black_box(diff.decode())
            });
        });
    }
    group.finish();
}

fn bench_subtract_into_decode(c: &mut Criterion) {
    // The production path since the flat cell bank: subtract yields an owned
    // table which is peeled in place, so no copy of the bank survives.
    let mut group = c.benchmark_group("iblt_subtract_and_decode_in_place");
    for d in [8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let cfg = IbltConfig::for_u64_keys(3);
            let mut alice = Iblt::with_expected_diff(d, &cfg);
            let mut bob = Iblt::with_expected_diff(d, &cfg);
            for x in 0..50_000u64 {
                alice.insert_u64(x);
                bob.insert_u64(x + d as u64);
            }
            b.iter(|| {
                let diff = alice.subtract(&bob).unwrap();
                black_box(diff.into_decode())
            });
        });
    }
    group.finish();
}

// The cells-per-difference sizing ablation moved to the dedicated
// `iblt_decode_success_vs_sizing` bench, which sweeps the near-threshold
// factors with and without the decode rescue and reports success rates and
// retry counts instead of wall-clock.

criterion_group!(benches, bench_insert, bench_subtract_decode, bench_subtract_into_decode);
criterion_main!(benches);
