//! Reactor serving throughput: a burst of concurrent TCP connections (one
//! known-`d` set-reconciliation session each) against a [`Server`] running 1,
//! 2, or 4 worker reactors.
//!
//! Each iteration dials `CONNS` clients concurrently and waits until every
//! recovery completes — so `mean / CONNS` is the wall-clock cost per served
//! session and its inverse the sessions/sec at that worker count. The server
//! (and its listener, balancer and reactors) persists across iterations; only
//! the connections churn, which is the serving-path cost this bench is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_bench::set_pair;
use recon_protocol::{Amplification, Role, SessionConfig};
use recon_runtime::{
    connect_endpoint, drive_endpoint, ReactorConfig, Server, ServerConfig, TcpService,
};
use std::collections::HashSet;
use std::hint::black_box;
use std::net::SocketAddr;
use std::time::Duration;

const CONNS: usize = 8;
// Heavy enough that serving compute (IBLT build over N keys per session)
// dominates connection setup — otherwise worker scaling would be invisible.
const N: usize = 30_000;
const D: usize = 16;
const BOUND: usize = D + 4;

fn config() -> SessionConfig {
    SessionConfig {
        seed: 0x5EED,
        amplification: Amplification::replicate(3),
        estimator: recon_estimator::L0Config::default(),
    }
}

/// One authoritative/replica pair; the server cannot tell clients apart, so
/// every connection reconciles the same difference.
fn dataset() -> (HashSet<u64>, HashSet<u64>) {
    set_pair(N, D, 0xACE)
}

struct OneSession {
    alice_set: HashSet<u64>,
}

impl TcpService for OneSession {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut recon_runtime::TcpEndpoint,
    ) -> Result<(), recon_base::ReconError> {
        let alice = recon_set::session::iblt_known_alice(&self.alice_set, BOUND, &config())?;
        endpoint.register(0, Role::Alice, alice)
    }
    // on_progress: default close-all-finished harvest.
}

fn run_burst(addr: SocketAddr, bob_set: &HashSet<u64>) {
    let handles: Vec<_> = (0..CONNS)
        .map(|_| {
            let bob_set = bob_set.clone();
            std::thread::spawn(move || {
                let mut endpoint = connect_endpoint(addr).expect("connect");
                let bob = recon_set::session::iblt_known_bob(&bob_set, &config());
                endpoint.register(0, Role::Bob, bob).expect("register");
                let reactor_config = ReactorConfig {
                    session_deadline: Some(Duration::from_secs(30)),
                    ..ReactorConfig::default()
                };
                let mut recovered = None;
                drive_endpoint(&mut endpoint, &reactor_config, |endpoint| {
                    match endpoint.take_outcome::<HashSet<u64>>(0) {
                        Some(outcome) => {
                            recovered = Some(outcome.expect("session").recovered);
                            Ok(true)
                        }
                        None => Ok(false),
                    }
                })
                .expect("client drive");
                black_box(recovered.expect("recovered"))
            })
        })
        .collect();
    for handle in handles {
        black_box(handle.join().expect("client"));
    }
}

fn bench_reactor_serve(c: &mut Criterion) {
    let (alice_set, bob_set) = dataset();
    let mut group = c.benchmark_group("reactor_serve");
    for workers in [1usize, 2, 4] {
        let server_config =
            ServerConfig::new().workers(workers).session_deadline(Some(Duration::from_secs(30)));
        let alice_set = alice_set.clone();
        let server = Server::bind("127.0.0.1:0", server_config, move |_| OneSession {
            alice_set: alice_set.clone(),
        })
        .expect("bind");
        let addr = server.local_addr();
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |bencher, _| {
            bencher.iter(|| run_burst(addr, &bob_set))
        });
        let stats = server.shutdown();
        assert_eq!(stats.failed, 0, "bench connections must close cleanly: {stats:?}");
    }
    group.finish();
}

criterion_group!(benches, bench_reactor_serve);
criterion_main!(benches);
