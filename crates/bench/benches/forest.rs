//! Experiment E-6.1: forest reconciliation (Theorem 6.1), timed over the number of
//! vertices and the perturbation size. Communication vs `d·σ` is reported by
//! `experiments forest`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_base::rng::Xoshiro256;
use recon_graph::forest::{self, Forest};
use std::hint::black_box;

fn bench_forest_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_reconciliation_vs_n");
    group.sample_size(10);
    for n in [1_000usize, 5_000, 20_000] {
        let mut rng = Xoshiro256::new(n as u64);
        let base = Forest::random(n, 0.1, 6, &mut rng);
        let alice = base.perturb(2, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(forest::reconcile(&alice, &base, 4, 7, 9).unwrap()));
        });
    }
    group.finish();
}

fn bench_forest_vs_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_reconciliation_vs_d");
    group.sample_size(10);
    let mut rng = Xoshiro256::new(3);
    let base = Forest::random(5_000, 0.1, 6, &mut rng);
    for d in [1usize, 4, 16] {
        let alice = base.perturb(d, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| black_box(forest::reconcile(&alice, &base, 2 * d, 7, 11).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest_vs_n, bench_forest_vs_d);
criterion_main!(benches);
