//! Experiments E-3.3 / E-3.5 / E-3.7 / E-3.9: the four set-of-sets protocols on a
//! common workload, swept over `d` and the child size `h`. The companion
//! communication table is printed by `experiments sos`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{cascading, iblt_of_iblts, multiround, naive, SosParams};
use std::hint::black_box;

fn bench_vs_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("sos_protocols_vs_d");
    group.sample_size(10);
    let workload = WorkloadParams::new(512, 16, 1 << 30);
    let params = SosParams::new(5, workload.max_child_size);
    for d in [4usize, 16, 64] {
        let (alice, bob) = generate_pair(&workload, d, d as u64);
        group.bench_with_input(BenchmarkId::new("naive", d), &d, |b, &d| {
            b.iter(|| black_box(naive::run_known(&alice, &bob, d, &params).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("iblt_of_iblts", d), &d, |b, &d| {
            b.iter(|| black_box(iblt_of_iblts::run_known(&alice, &bob, d, d, &params).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("cascading", d), &d, |b, &d| {
            b.iter(|| black_box(cascading::run_known(&alice, &bob, d, &params).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("multiround", d), &d, |b, &d| {
            b.iter(|| black_box(multiround::run_known(&alice, &bob, d, d, &params).unwrap()));
        });
    }
    group.finish();
}

fn bench_vs_child_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("sos_protocols_vs_child_size");
    group.sample_size(10);
    let d = 8;
    for h in [8usize, 32, 96] {
        let workload = WorkloadParams::new(256, h, 1 << 30);
        let params = SosParams::new(9, workload.max_child_size);
        let (alice, bob) = generate_pair(&workload, d, 70 + h as u64);
        group.bench_with_input(BenchmarkId::new("naive", h), &h, |b, _| {
            b.iter(|| black_box(naive::run_known(&alice, &bob, d, &params).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("cascading", h), &h, |b, _| {
            b.iter(|| black_box(cascading::run_known(&alice, &bob, d, &params).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_d, bench_vs_child_size);
criterion_main!(benches);
