//! N-party convergence cost vs fleet size, star vs gossip. One iteration is
//! one whole fleet lifetime: build the replicas, run rounds to provable
//! convergence (equal set hashes everywhere), tear down.
//!
//! Besides wall-clock time, each configuration prints its wire economics
//! once — rounds to converge, total bytes, and the heaviest replica's share —
//! since those, not CPU time, are what the topologies trade against each
//! other: the star pays O(1) rounds but concentrates every byte on the hub;
//! gossip pays O(log n) rounds and spreads the load to a small multiple of
//! the mean.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_fleet::{FleetRunner, FleetStats, GossipConfig, GossipRunner, StarConfig, StarFleet};
use recon_store::{MemoryBackend, SketchStore, StoreConfig};
use std::collections::HashSet;
use std::hint::black_box;

const SHARED: u64 = 512;
const MAX_ROUNDS: usize = 16;

/// Spread keys so the strata estimators see uniform bits.
fn key(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Every replica holds a shared core plus two private keys: a union of
/// `SHARED + 2n` keys, with per-pair differences small and uniform.
fn replica_sets(n: u64) -> Vec<HashSet<u64>> {
    (0..n)
        .map(|m| {
            let mut set: HashSet<u64> = (0..SHARED).map(key).collect();
            set.insert(key(1_000_000 + 2 * m));
            set.insert(key(1_000_001 + 2 * m));
            set
        })
        .collect()
}

fn run_star(n: u64) -> FleetStats {
    let store = SketchStore::open(
        MemoryBackend::new(),
        StoreConfig::default().with_seed(0xF1EE7 ^ n).with_ladder(vec![64, 256, 1024]),
    )
    .expect("open store");
    let config = StarConfig {
        d_bound: Some(256.min(4 * n + 8)), // covers the worst round-1 diff of 2n keys
        spoke_threads: 4,
        ..StarConfig::default()
    };
    let hub: Vec<u64> = (0..SHARED).map(key).collect();
    let mut fleet = StarFleet::launch(store, config, hub, replica_sets(n)).expect("launch");
    let stats = fleet.run_to_convergence(MAX_ROUNDS).expect("converge");
    let (_, server, _) = fleet.shutdown();
    assert_eq!(server.failed, 0, "{server:?}");
    stats
}

fn run_gossip(n: u64) -> FleetStats {
    let config =
        GossipConfig { seed: 0x6055 ^ n, ladder: vec![16, 64, 256], ..GossipConfig::default() };
    let mut fleet = GossipRunner::new(config, replica_sets(n)).expect("build");
    fleet.run_to_convergence(MAX_ROUNDS).expect("converge")
}

fn report(topology: &str, n: u64, stats: &FleetStats) {
    println!(
        "fleet_converge/{topology}/{n}: {} rounds, {} sessions, {} B total, \
         heaviest replica {} B",
        stats.rounds,
        stats.sessions,
        stats.total_bytes,
        stats.max_replica_bytes()
    );
}

fn bench_fleet_converge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_converge");
    for n in [16u64, 64] {
        report("star", n, &run_star(n));
        group.bench_with_input(BenchmarkId::new("star", n), &n, |bencher, &n| {
            bencher.iter(|| black_box(run_star(n).total_bytes))
        });

        report("gossip", n, &run_gossip(n));
        group.bench_with_input(BenchmarkId::new("gossip", n), &n, |bencher, &n| {
            bencher.iter(|| black_box(run_gossip(n).total_bytes))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_converge);
criterion_main!(benches);
