//! The rational-interpolation solve in isolation: dense `O(d^3)` Gaussian
//! elimination on the flat bank vs the `O(d^2)` structured path (Newton
//! interpolation + extended-Euclidean rational reconstruction) that
//! `recon-set`'s charpoly protocol now tries first. The end-to-end charpoly
//! bench is dominated by the `O(n·d)` evaluations and the root finding, so this
//! bench pins the solver gap itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_field::{
    batch_invert, interpolate, rational_reconstruct, solve_consistent_flat, Fp, Poly,
};
use std::hint::black_box;

/// Build the charpoly system for a difference of `d` elements split evenly:
/// evaluation points, ratio values `f_i = P*(z_i)/Q*(z_i)`, and the true monic
/// numerator/denominator degrees.
fn system(d: usize) -> (Vec<Fp>, Vec<Fp>, usize, usize) {
    let deg_missing = d / 2;
    let deg_extra = d - deg_missing;
    let missing: Vec<Fp> = (0..deg_missing as u64).map(|i| Fp::new(i * 7 + 3)).collect();
    let extra: Vec<Fp> = (0..deg_extra as u64).map(|i| Fp::new(i * 11 + 5_000)).collect();
    let p_true = Poly::from_roots(&missing);
    let q_true = Poly::from_roots(&extra);
    // One point more than the degree budget, as the protocol uses.
    let points: Vec<Fp> = (0..=d as u64).map(|i| Fp::new((1 << 60) + i)).collect();
    let mut denominators: Vec<Fp> = points.iter().map(|&z| q_true.eval(z)).collect();
    assert!(batch_invert(&mut denominators));
    let ratios: Vec<Fp> =
        points.iter().zip(&denominators).map(|(&z, &inv)| p_true.eval(z) * inv).collect();
    (points, ratios, deg_missing, deg_extra)
}

fn bench_dense_vs_structured(c: &mut Criterion) {
    let mut group = c.benchmark_group("charpoly_solve");
    group.sample_size(10);
    for d in [32usize, 128, 256] {
        let (points, ratios, deg_missing, deg_extra) = system(d);

        group.bench_with_input(BenchmarkId::new("dense", d), &d, |b, _| {
            // The dense path solves over exactly d points (as the protocol's
            // fallback does).
            let points = &points[..d];
            let ratios = &ratios[..d];
            b.iter(|| {
                let mut matrix = Vec::with_capacity(d * d);
                let mut rhs = Vec::with_capacity(d);
                for (&z, &f) in points.iter().zip(ratios) {
                    let mut zp = Fp::ONE;
                    for _ in 0..deg_missing {
                        matrix.push(zp);
                        zp *= z;
                    }
                    let z_pow_p = zp;
                    let mut zq = Fp::ONE;
                    for _ in 0..deg_extra {
                        matrix.push(-(f * zq));
                        zq *= z;
                    }
                    rhs.push(f * zq - z_pow_p);
                }
                black_box(solve_consistent_flat(&matrix, d, d, &rhs).expect("solvable"))
            });
        });

        group.bench_with_input(BenchmarkId::new("structured", d), &d, |b, _| {
            b.iter(|| {
                let modulus = Poly::from_roots(&points);
                let interpolant = interpolate(&points, &ratios).expect("distinct points");
                let (r, t) =
                    rational_reconstruct(&modulus, &interpolant, deg_missing).expect("pair");
                let g = r.gcd(&t);
                let (p_red, _) = r.divmod(&g);
                let (q_red, _) = t.divmod(&g);
                black_box((p_red.monic(), q_red.monic()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense_vs_structured);
criterion_main!(benches);
