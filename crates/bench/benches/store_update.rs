//! Incremental sketch maintenance cost in the persistent store: what one
//! WAL-logged mutation batch costs while every ladder rung's IBLT bank, the
//! strata estimator, and the set hash are kept current — `O(k)` per key,
//! independent of the n keys already resident (the daemon's whole point: no
//! `O(n)` rebuild anywhere on the mutation path).
//!
//! `insert_delete_cycle/{n}` applies a 256-key insert batch and then deletes
//! the same keys (the store returns to its original state, so iterations
//! compose); `snapshot/{n}` is the durable checkpoint: encode every bank +
//! sorted keys and atomically replace the snapshot blob.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recon_store::{MemoryBackend, SketchStore, StoreConfig, StoreStat};
use std::hint::black_box;

const BATCH: usize = 256;

fn preloaded(n: usize) -> SketchStore<MemoryBackend> {
    let config = StoreConfig::default().with_seed(0x57_BE7C);
    let mut store = SketchStore::open(MemoryBackend::new(), config).expect("open");
    store.open_replica("bench").expect("replica");
    let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    for chunk in keys.chunks(4096) {
        store.insert("bench", chunk).expect("preload");
    }
    store
}

/// Batch keys disjoint from the preload (which stays below `1 << 63`).
fn batch() -> Vec<u64> {
    (0..BATCH as u64).map(|i| (1 << 63) | i).collect()
}

fn bench_store_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_update");
    for n in [10_000usize, 100_000] {
        let mut store = preloaded(n);
        let keys = batch();
        group.bench_with_input(BenchmarkId::new("insert_delete_cycle", n), &n, |bencher, _| {
            bencher.iter(|| {
                let inserted = store.insert("bench", &keys).expect("insert");
                let deleted = store.delete("bench", &keys).expect("delete");
                black_box((inserted, deleted));
            })
        });
        let stat: StoreStat = store.stat("bench").expect("stat");
        assert_eq!(stat.cardinality, n as u64, "cycles must leave the store unchanged");

        group.bench_with_input(BenchmarkId::new("snapshot", n), &n, |bencher, _| {
            bencher.iter(|| black_box(store.snapshot("bench").expect("snapshot")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store_update);
criterion_main!(benches);
