//! Reactor serving capacity under real concurrency: a multi-process load
//! generator drives over a thousand simultaneous TCP connections (one
//! known-`d` set-reconciliation session each) against one [`Server`], and
//! reports throughput *and* tail latency.
//!
//! Unlike `reactor_serve` (8 threads in the bench process, mean only), this
//! bench re-executes itself as `--load-child` worker processes, each running a
//! client-side [`Reactor`] that multiplexes hundreds of concurrent endpoints —
//! so the server faces a genuinely external, kernel-scheduled load. Each child
//! measures every session's insert-to-retire latency and streams the raw
//! nanosecond values to the parent, which records:
//!
//! * `mean_ns` — wall-clock per served session (`1e9 / mean_ns` = sessions/sec
//!   at this concurrency), and
//! * `p50_ns` / `p99_ns` — the session-latency distribution, carried through
//!   the `--json` report into the `bench-check` gate, which fails on a p99
//!   blow-up even when the mean stays flat.
//!
//! Full mode runs 4 children × 256 connections (1024 concurrent); `--smoke`
//! runs 2 × 32 so CI can execute the whole pipeline in seconds. Both ids are
//! committed to the baseline so the smoke leg actually gates.

use criterion::{black_box, record_measurement, smoke_mode, write_json_report};
use recon_bench::set_pair;
use recon_protocol::{Amplification, Role, SessionConfig};
use recon_runtime::{
    connect_endpoint, ConnId, Reactor, ReactorConfig, Server, ServerConfig, TcpService,
};
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
// Light enough that a single core can push >1k concurrent sessions through in
// seconds — this bench is about the serving path (accept, readiness, framing,
// buffer recycling), not IBLT compute, which `reactor_serve` already covers.
const N: usize = 1_000;
const D: usize = 8;
const BOUND: usize = D + 4;
/// Generous: under 1k-connection queueing on one core, an individual session
/// legitimately waits far longer than any interactive deadline.
const DEADLINE: Duration = Duration::from_secs(120);

fn config() -> SessionConfig {
    SessionConfig {
        seed: 0x5EED,
        amplification: Amplification::replicate(3),
        estimator: recon_estimator::L0Config::default(),
    }
}

/// One authoritative/replica pair; deterministic, so child processes rebuild
/// the very same replica set from the shared seed.
fn dataset() -> (HashSet<u64>, HashSet<u64>) {
    set_pair(N, D, 0xACE)
}

struct OneSession {
    alice_set: HashSet<u64>,
}

impl TcpService for OneSession {
    fn register(
        &mut self,
        _peer: SocketAddr,
        endpoint: &mut recon_runtime::TcpEndpoint,
    ) -> Result<(), recon_base::ReconError> {
        let alice = recon_set::session::iblt_known_alice(&self.alice_set, BOUND, &config())?;
        endpoint.register(0, Role::Alice, alice)
    }
    // on_progress: default close-all-finished harvest.
}

/// Child-process body: drive `conns` concurrent sessions on one client-side
/// reactor, printing each session's insert-to-retire latency (integer
/// nanoseconds, one per line) to stdout.
fn load_child(addr: SocketAddr, conns: usize) {
    let (_, bob_set) = dataset();
    let reactor_config =
        ReactorConfig { session_deadline: Some(DEADLINE), ..ReactorConfig::default() };
    let mut reactor = Reactor::new(reactor_config).expect("client reactor");
    let mut started: HashMap<ConnId, Instant> = HashMap::with_capacity(conns);
    for _ in 0..conns {
        let mut endpoint = connect_endpoint(addr).expect("connect");
        let bob = recon_set::session::iblt_known_bob(&bob_set, &config());
        endpoint.register(0, Role::Bob, bob).expect("register");
        let conn = reactor.insert(endpoint).expect("insert");
        started.insert(conn, Instant::now());
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut done = 0usize;
    while done < conns {
        reactor
            .turn(Some(Duration::from_millis(200)), |_, endpoint| {
                if let Some(outcome) = endpoint.take_outcome::<HashSet<u64>>(0) {
                    black_box(outcome.expect("session outcome").recovered);
                }
            })
            .expect("client turn");
        for finished in reactor.take_finished() {
            finished.result.expect("clean close");
            let latency = started[&finished.conn].elapsed();
            writeln!(out, "{}", latency.as_nanos()).expect("write latency");
            done += 1;
        }
    }
}

/// Parent body: serve, fan out child processes, gather every session latency.
/// Returns `(mean_ns_per_session, p50_ns, p99_ns, sessions)`.
fn run_load(children: usize, conns_per_child: usize) -> (f64, f64, f64, u64) {
    let (alice_set, _) = dataset();
    let server_config = ServerConfig::new().workers(WORKERS).session_deadline(Some(DEADLINE));
    let server = Server::bind("127.0.0.1:0", server_config, move |_| OneSession {
        alice_set: alice_set.clone(),
    })
    .expect("bind");
    let addr = server.local_addr();
    let exe = std::env::current_exe().expect("current exe");

    let start = Instant::now();
    let procs: Vec<_> = (0..children)
        .map(|_| {
            Command::new(&exe)
                .arg("--load-child")
                .arg(addr.to_string())
                .arg(conns_per_child.to_string())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn load child")
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(children * conns_per_child);
    for child in procs {
        let output = child.wait_with_output().expect("wait for load child");
        assert!(output.status.success(), "load child failed: {:?}", output.status);
        for line in String::from_utf8(output.stdout).expect("child stdout").lines() {
            latencies.push(line.trim().parse().expect("latency line"));
        }
    }
    let wall = start.elapsed();

    let stats = server.shutdown();
    let sessions = (children * conns_per_child) as u64;
    assert_eq!(latencies.len() as u64, sessions, "every session must report a latency");
    assert_eq!(stats.served(), sessions, "every connection must be served: {stats:?}");
    assert_eq!(stats.failed, 0, "no connection may fail under load: {stats:?}");

    latencies.sort_unstable();
    let percentile = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize] as f64;
    (wall.as_nanos() as f64 / sessions as f64, percentile(0.50), percentile(0.99), sessions)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Child re-execution entry: must be checked before anything else so the
    // shim's flag parsing never sees child invocations.
    if let Some(at) = args.iter().position(|a| a == "--load-child") {
        let addr: SocketAddr = args[at + 1].parse().expect("child addr");
        let conns: usize = args[at + 2].parse().expect("child conns");
        load_child(addr, conns);
        return;
    }

    let (children, conns_per_child) = if smoke_mode() { (2, 32) } else { (4, 256) };
    let (mean_ns, p50_ns, p99_ns, sessions) = run_load(children, conns_per_child);
    record_measurement(
        &format!("reactor_serve_load/conns/{}", children * conns_per_child),
        mean_ns,
        sessions,
        Some(p50_ns),
        Some(p99_ns),
    );
    println!(
        "sessions/sec at {} concurrent: {:.0}",
        children * conns_per_child,
        1e9 / mean_ns.max(1.0)
    );
    write_json_report();
}
