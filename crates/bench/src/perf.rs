//! The machine-readable half of the perf-regression gate.
//!
//! The in-repo criterion shim writes a small JSON report per bench binary
//! (`--json <path>`: schema version, smoke/full mode, and one `{id, mean_ns,
//! iters}` record per measurement, optionally carrying `p50_ns`/`p99_ns`
//! latency percentiles for distribution-measuring benches). This module parses those reports and
//! compares a fresh run against a committed baseline with a noise threshold —
//! the logic behind the `bench-check` binary that CI runs. The parser covers
//! exactly the JSON subset the shim emits (objects, arrays, strings with
//! escapes, numbers) so the gate stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark id as printed by the shim (`group/parameter`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iters: u64,
    /// Median latency in nanoseconds, when the bench measured a distribution
    /// (load generators) rather than a homogeneous `iter` loop.
    pub p50_ns: Option<f64>,
    /// 99th-percentile latency in nanoseconds, same provenance as `p50_ns`.
    pub p99_ns: Option<f64>,
}

/// A parsed bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// The measurements, in run order.
    pub benches: Vec<BenchEntry>,
}

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// The JSON values the shim's schema uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end of input"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte sequences included).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty string tail");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>().map(Json::Number).map_err(|_| self.error("invalid number"))
    }
}

/// Parse a bench report written by the criterion shim's `--json` mode.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let mut reader = Reader::new(text);
    let value = reader.value()?;
    reader.skip_whitespace();
    if reader.pos != reader.bytes.len() {
        return Err(reader.error("trailing content"));
    }
    let Json::Object(root) = value else {
        return Err("report root must be an object".to_string());
    };
    match root.get("schema") {
        Some(Json::Number(v)) if *v == 1.0 => {}
        other => return Err(format!("unsupported schema version: {other:?}")),
    }
    let mode = match root.get("mode") {
        Some(Json::String(m)) => m.clone(),
        _ => return Err("report is missing \"mode\"".to_string()),
    };
    let Some(Json::Array(raw)) = root.get("benches") else {
        return Err("report is missing \"benches\"".to_string());
    };
    let mut benches = Vec::with_capacity(raw.len());
    for item in raw {
        let Json::Object(fields) = item else {
            return Err("bench entry must be an object".to_string());
        };
        let id = match fields.get("id") {
            Some(Json::String(id)) => id.clone(),
            _ => return Err("bench entry is missing \"id\"".to_string()),
        };
        let mean_ns = match fields.get("mean_ns") {
            Some(Json::Number(v)) if *v >= 0.0 => *v,
            _ => return Err(format!("bench '{id}' is missing a valid \"mean_ns\"")),
        };
        let iters = match fields.get("iters") {
            Some(Json::Number(v)) if *v >= 0.0 => *v as u64,
            _ => return Err(format!("bench '{id}' is missing a valid \"iters\"")),
        };
        let percentile = |key: &str| -> Result<Option<f64>, String> {
            match fields.get(key) {
                None => Ok(None),
                Some(Json::Number(v)) if *v >= 0.0 => Ok(Some(*v)),
                _ => Err(format!("bench '{id}' has an invalid \"{key}\"")),
            }
        };
        let p50_ns = percentile("p50_ns")?;
        let p99_ns = percentile("p99_ns")?;
        benches.push(BenchEntry { id, mean_ns, iters, p50_ns, p99_ns });
    }
    Ok(BenchReport { mode, benches })
}

/// Render entries back into the shim's report format (used by `bench-check
/// --update` to rewrite the committed baseline). The escaping matches the
/// shim's writer exactly, so an updated baseline always re-parses.
pub fn render_report(mode: &str, benches: &[BenchEntry]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (i, entry) in benches.iter().enumerate() {
        let mut fields = format!(
            "\"id\": \"{}\", \"mean_ns\": {:.3}, \"iters\": {}",
            escape(&entry.id),
            entry.mean_ns,
            entry.iters,
        );
        if let Some(p50) = entry.p50_ns {
            fields.push_str(&format!(", \"p50_ns\": {p50:.3}"));
        }
        if let Some(p99) = entry.p99_ns {
            fields.push_str(&format!(", \"p99_ns\": {p99:.3}"));
        }
        out.push_str(&format!(
            "    {{{fields}}}{}\n",
            if i + 1 == benches.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// The verdict for one benchmark present in both baseline and current run.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark id.
    pub id: String,
    /// Baseline mean (ns / iter).
    pub baseline_ns: f64,
    /// Current mean (ns / iter).
    pub current_ns: f64,
    /// `current / baseline` (`> 1` is slower).
    pub ratio: f64,
    /// `current p99 / baseline p99`, when both runs reported a p99.
    pub p99_ratio: Option<f64>,
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<50} {:>12.1} -> {:>12.1} ns/iter  ({:+.1}%)",
            self.id,
            self.baseline_ns,
            self.current_ns,
            (self.ratio - 1.0) * 100.0
        )?;
        if let Some(p99_ratio) = self.p99_ratio {
            write!(f, "  [p99 {:+.1}%]", (p99_ratio - 1.0) * 100.0)?;
        }
        Ok(())
    }
}

/// Outcome of comparing a run against the baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Benchmarks slower than the threshold allows.
    pub regressions: Vec<Delta>,
    /// Benchmarks within the threshold (faster or mildly slower).
    pub within: Vec<Delta>,
    /// Ids present in the current run but not the baseline.
    pub new_benches: Vec<String>,
    /// Ids present in the baseline but missing from the current run.
    pub missing: Vec<String>,
}

/// Compare `current` against `baseline`: a benchmark regresses when its mean
/// exceeds `threshold ×` the baseline mean — or, when both runs reported a
/// p99 latency, when the p99 exceeds `threshold ×` the baseline p99 (a tail
/// blow-up is a regression even at an unchanged mean). The threshold is
/// deliberately generous (CI default 1.5×) because the shim's short windows
/// are noisy and CI machines differ from the machine that recorded the
/// baseline.
pub fn compare(baseline: &[BenchEntry], current: &[BenchEntry], threshold: f64) -> Comparison {
    assert!(threshold > 0.0, "threshold must be positive");
    let current_by_id: BTreeMap<&str, &BenchEntry> =
        current.iter().map(|e| (e.id.as_str(), e)).collect();
    let baseline_ids: BTreeMap<&str, ()> = baseline.iter().map(|e| (e.id.as_str(), ())).collect();

    let mut comparison = Comparison::default();
    for base in baseline {
        match current_by_id.get(base.id.as_str()) {
            None => comparison.missing.push(base.id.clone()),
            Some(entry) => {
                // A zero-mean baseline (sub-ns bench) cannot regress meaningfully.
                let ratio = if base.mean_ns > 0.0 { entry.mean_ns / base.mean_ns } else { 1.0 };
                let p99_ratio = match (base.p99_ns, entry.p99_ns) {
                    (Some(base_p99), Some(p99)) if base_p99 > 0.0 => Some(p99 / base_p99),
                    _ => None,
                };
                let delta = Delta {
                    id: base.id.clone(),
                    baseline_ns: base.mean_ns,
                    current_ns: entry.mean_ns,
                    ratio,
                    p99_ratio,
                };
                if ratio > threshold || p99_ratio.is_some_and(|r| r > threshold) {
                    comparison.regressions.push(delta);
                } else {
                    comparison.within.push(delta);
                }
            }
        }
    }
    for entry in current {
        if !baseline_ids.contains_key(entry.id.as_str()) {
            comparison.new_benches.push(entry.id.clone());
        }
    }
    comparison
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, mean_ns: f64) -> BenchEntry {
        BenchEntry { id: id.to_string(), mean_ns, iters: 10, p50_ns: None, p99_ns: None }
    }

    fn entry_p99(id: &str, mean_ns: f64, p99_ns: f64) -> BenchEntry {
        BenchEntry { id: id.to_string(), mean_ns, iters: 10, p50_ns: None, p99_ns: Some(p99_ns) }
    }

    #[test]
    fn parses_a_shim_report() {
        let text = r#"{
  "schema": 1,
  "mode": "smoke",
  "benches": [
    {"id": "iblt_insert_10k_keys/8", "mean_ns": 510650.250, "iters": 392},
    {"id": "odd \"name\"", "mean_ns": 2.5, "iters": 1}
  ]
}"#;
        let report = parse_report(text).unwrap();
        assert_eq!(report.mode, "smoke");
        assert_eq!(report.benches.len(), 2);
        assert_eq!(report.benches[0].id, "iblt_insert_10k_keys/8");
        assert_eq!(report.benches[0].iters, 392);
        assert!((report.benches[0].mean_ns - 510650.25).abs() < 1e-6);
        assert_eq!(report.benches[1].id, "odd \"name\"");
    }

    #[test]
    fn report_roundtrips_through_render() {
        let benches = vec![
            entry("a/1", 100.125),
            entry("b \"x\"/2", 7.0),
            BenchEntry {
                id: "load/1024".into(),
                mean_ns: 5e6,
                iters: 2048,
                p50_ns: Some(4.5e6),
                p99_ns: Some(9.25e6),
            },
        ];
        let rendered = render_report("full", &benches);
        let parsed = parse_report(&rendered).unwrap();
        assert_eq!(parsed.mode, "full");
        assert_eq!(parsed.benches, benches);
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(parse_report("").is_err());
        assert!(parse_report("[]").is_err());
        assert!(parse_report(r#"{"schema": 2, "mode": "full", "benches": []}"#).is_err());
        assert!(parse_report(r#"{"schema": 1, "benches": []}"#).is_err());
        assert!(parse_report(r#"{"schema": 1, "mode": "full", "benches": [{"id": "x"}]}"#).is_err());
        assert!(parse_report(r#"{"schema": 1, "mode": "full", "benches": []} extra"#).is_err());
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let baseline = vec![entry("fast", 100.0), entry("slow", 100.0), entry("gone", 5.0)];
        let current = vec![entry("fast", 140.0), entry("slow", 151.0), entry("added", 9.0)];
        let comparison = compare(&baseline, &current, 1.5);
        assert_eq!(comparison.regressions.len(), 1);
        assert_eq!(comparison.regressions[0].id, "slow");
        assert!((comparison.regressions[0].ratio - 1.51).abs() < 1e-9);
        assert_eq!(comparison.within.len(), 1);
        assert_eq!(comparison.within[0].id, "fast");
        assert_eq!(comparison.new_benches, vec!["added".to_string()]);
        assert_eq!(comparison.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn p99_blowup_regresses_even_at_flat_mean() {
        let baseline = vec![entry_p99("load", 100.0, 200.0)];
        let flat_mean_fat_tail = vec![entry_p99("load", 100.0, 320.0)];
        let comparison = compare(&baseline, &flat_mean_fat_tail, 1.5);
        assert_eq!(comparison.regressions.len(), 1);
        assert_eq!(comparison.regressions[0].p99_ratio, Some(1.6));
        assert!(comparison.regressions[0].to_string().contains("[p99 +60.0%]"));

        // Within threshold on both axes: fine.
        let healthy = vec![entry_p99("load", 120.0, 240.0)];
        assert!(compare(&baseline, &healthy, 1.5).regressions.is_empty());

        // A side that never measured p99 (old baseline, iter-loop bench)
        // still gates on the mean alone.
        let meanless = vec![entry("load", 400.0)];
        let comparison = compare(&baseline, &meanless, 1.5);
        assert_eq!(comparison.regressions.len(), 1);
        assert_eq!(comparison.regressions[0].p99_ratio, None);
    }

    #[test]
    fn zero_baseline_never_regresses() {
        let comparison = compare(&[entry("z", 0.0)], &[entry("z", 50.0)], 1.5);
        assert!(comparison.regressions.is_empty());
        assert_eq!(comparison.within[0].ratio, 1.0);
    }
}
