//! # recon-bench
//!
//! Shared workload builders for the Criterion benches and the `experiments` binary
//! that regenerate the paper's evaluation artifacts (Table 1, Figure 1) and the
//! per-theorem experiment suite listed in `DESIGN.md` / `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;

use recon_apps::database::BinaryTable;
use recon_base::rng::Xoshiro256;
use std::collections::HashSet;

/// A pair of plain sets with exactly `d` differing elements (half on each side).
pub fn set_pair(n: usize, d: usize, seed: u64) -> (HashSet<u64>, HashSet<u64>) {
    let mut rng = Xoshiro256::new(seed);
    let mut alice: HashSet<u64> = HashSet::with_capacity(n + d);
    while alice.len() < n {
        alice.insert(rng.next_below(1 << 48));
    }
    let mut bob = alice.clone();
    while alice.len() < n + d / 2 {
        alice.insert(rng.next_below(1 << 48));
    }
    while bob.len() < n + (d - d / 2) {
        bob.insert(rng.next_below(1 << 48));
    }
    (alice, bob)
}

/// The Table 1 database workload: `s` rows over `u` columns, density ~1/2
/// (`h = Θ(u)`, `n = Θ(su)`), with exactly `d` flipped bits.
pub fn database_pair(s: usize, u: u32, d: usize, seed: u64) -> (BinaryTable, BinaryTable) {
    let mut rng = Xoshiro256::new(seed);
    let alice = BinaryTable::random(s, u, 0.5, &mut rng);
    let bob = alice.flip_bits(d, &mut rng);
    (alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_pair_has_requested_difference() {
        let (a, b) = set_pair(1000, 20, 1);
        assert_eq!(a.symmetric_difference(&b).count(), 20);
        assert_eq!(a.len(), 1010);
    }

    #[test]
    fn database_pair_has_bounded_difference() {
        let (a, b) = database_pair(64, 32, 6, 2);
        assert!(a.bit_difference(&b) <= 6);
        assert_eq!(a.num_rows(), 64);
    }
}
