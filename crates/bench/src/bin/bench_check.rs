//! `bench-check` — the perf-regression gate over the criterion shim's JSON
//! reports.
//!
//! ```text
//! bench-check [--baseline PATH] [--threshold RATIO] [--update] CI_REPORT...
//! ```
//!
//! Reads one or more reports written by `cargo bench -p recon-bench --bench
//! <name> -- [--smoke] --json <path>`, merges their entries (later files win on
//! duplicate ids), and compares them against the committed baseline
//! (`BENCH_baseline.json` by default). A benchmark fails the gate when its mean
//! exceeds `threshold ×` its baseline mean — 1.5× by default (override with
//! `--threshold` or the `RECON_BENCH_THRESHOLD` environment variable), generous
//! on purpose: the gate is meant to catch order-of-magnitude slips and
//! accidentally quadratic loops, not daily jitter. New benchmarks are reported
//! but never fail the gate; benchmarks missing from the run are warned about.
//!
//! `--update` rewrites the baseline from the given reports instead of
//! comparing (run it locally after intentional performance changes and commit
//! the result).

use recon_bench::perf::{compare, parse_report, render_report, BenchEntry};
use std::collections::BTreeMap;
use std::process::ExitCode;

const DEFAULT_BASELINE: &str = "BENCH_baseline.json";
const DEFAULT_THRESHOLD: f64 = 1.5;

struct Options {
    baseline: String,
    threshold: f64,
    update: bool,
    reports: Vec<String>,
}

fn usage() -> ! {
    eprintln!("usage: bench-check [--baseline PATH] [--threshold RATIO] [--update] CI_REPORT...");
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        baseline: DEFAULT_BASELINE.to_string(),
        threshold: std::env::var("RECON_BENCH_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_THRESHOLD),
        update: false,
        reports: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => options.baseline = args.next().unwrap_or_else(|| usage()),
            "--threshold" => {
                options.threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &f64| t > 0.0)
                    .unwrap_or_else(|| usage())
            }
            "--update" => options.update = true,
            "--help" | "-h" => usage(),
            _ => options.reports.push(arg),
        }
    }
    if options.reports.is_empty() {
        usage();
    }
    options
}

fn load_entries(paths: &[String]) -> Result<Vec<BenchEntry>, String> {
    let mut merged: BTreeMap<String, BenchEntry> = BTreeMap::new();
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|error| format!("read {path}: {error}"))?;
        let report = parse_report(&text).map_err(|error| format!("parse {path}: {error}"))?;
        for entry in report.benches {
            merged.insert(entry.id.clone(), entry);
        }
    }
    Ok(merged.into_values().collect())
}

fn main() -> ExitCode {
    let options = parse_options();
    let current = match load_entries(&options.reports) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("bench-check: {error}");
            return ExitCode::from(2);
        }
    };

    if options.update {
        let body = render_report("baseline", &current);
        if let Err(error) = std::fs::write(&options.baseline, body) {
            eprintln!("bench-check: write {}: {error}", options.baseline);
            return ExitCode::from(2);
        }
        println!("wrote {} baseline entries to {}", current.len(), options.baseline);
        return ExitCode::SUCCESS;
    }

    let baseline = match load_entries(std::slice::from_ref(&options.baseline)) {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("bench-check: {error}");
            return ExitCode::from(2);
        }
    };

    let comparison = compare(&baseline, &current, options.threshold);
    println!(
        "bench-check: {} benchmarks vs {} (threshold {:.2}x)",
        current.len(),
        options.baseline,
        options.threshold
    );
    for delta in &comparison.within {
        println!("  ok        {delta}");
    }
    for id in &comparison.new_benches {
        println!("  new       {id} (not in baseline; add it with --update)");
    }
    for id in &comparison.missing {
        println!("  missing   {id} (in baseline but not measured this run)");
    }
    for delta in &comparison.regressions {
        println!("  REGRESSED {delta}");
    }
    if comparison.regressions.is_empty() {
        println!("bench-check: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-check: {} benchmark(s) regressed beyond {:.2}x",
            comparison.regressions.len(),
            options.threshold
        );
        ExitCode::FAILURE
    }
}
