//! Regenerate the paper's evaluation artifacts as measured tables.
//!
//! Usage: `cargo run -p recon-bench --release --bin experiments [subcommand]`
//!
//! Subcommands (default `all`):
//!
//! | subcommand  | paper artifact / experiment id |
//! |-------------|--------------------------------|
//! | `table1`    | Table 1 — SSRK protocol comparison on the binary-database workload |
//! | `figure1`   | Figure 1 — merge ambiguity instance |
//! | `set`       | E-2.2 — IBLT set reconciliation scaling |
//! | `charpoly`  | E-2.3 — characteristic-polynomial scaling |
//! | `estimator` | E-3.1 — ℓ0 vs strata estimator accuracy and size |
//! | `sos`       | E-3.3/3.5/3.7/3.9 — set-of-sets protocol sweep |
//! | `separation`| E-5.3 — empirical (h, d+1, 2d+1)-separation probability |
//! | `graph`     | E-5.2/5.6 — random-graph reconciliation success and communication |
//! | `general`   | E-4.1/4.3 — general-graph protocols |
//! | `forest`    | E-6.1 — forest reconciliation vs d·σ |

use recon_apps::database::SosProtocolKind;
use recon_base::rng::Xoshiro256;
use recon_bench::{database_pair, set_pair};
use recon_estimator::{L0Config, L0Estimator, Side, StrataConfig, StrataEstimator};
use recon_graph::degree_neighborhood::{self, DegreeNeighborhoodParams};
use recon_graph::degree_order::{self, DegreeOrderParams};
use recon_graph::forest::Forest;
use recon_graph::{forest, general, Graph};
use recon_set::{reconcile_known, reconcile_known_charpoly};
use recon_sos::workload::{generate_pair, WorkloadParams};
use recon_sos::{cascading, iblt_of_iblts, multiround, naive, SosParams};
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "table1" {
        table1();
    }
    if all || which == "figure1" {
        figure1();
    }
    if all || which == "set" {
        set_scaling();
    }
    if all || which == "charpoly" {
        charpoly_scaling();
    }
    if all || which == "estimator" {
        estimator_accuracy();
    }
    if all || which == "sos" {
        sos_sweep();
    }
    if all || which == "separation" {
        separation_probability();
    }
    if all || which == "graph" {
        graph_reconciliation();
    }
    if all || which == "general" {
        general_graphs();
    }
    if all || which == "forest" {
        forest_scaling();
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// E-T1: Table 1, measured.
fn table1() {
    header("Table 1 (measured): SSRK protocols on the binary-database workload");
    println!("workload: s rows x u=128 columns, density 1/2 (h = Θ(u), n = Θ(su))");
    println!(
        "{:<10} {:>6} {:>28} {:>12} {:>10} {:>8}",
        "s", "d", "protocol", "bytes", "ms", "rounds"
    );
    for &s in &[256usize, 1024] {
        for &d in &[4usize, 16] {
            let (alice, bob) = database_pair(s, 128, d, (s + d) as u64);
            for (name, kind) in [
                ("naive (Thm 3.3)", SosProtocolKind::Naive),
                ("IBLT of IBLTs (Thm 3.5)", SosProtocolKind::IbltOfIblts),
                ("cascading (Thm 3.7)", SosProtocolKind::Cascading),
                ("multi-round (Thm 3.9)", SosProtocolKind::MultiRound),
            ] {
                let start = Instant::now();
                let result = bob.reconcile_from(&alice, d, kind, 7);
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                match result {
                    Ok(recon_protocol::Outcome { recovered, stats }) => {
                        assert_eq!(recovered, alice, "protocol returned a wrong table");
                        println!(
                            "{:<10} {:>6} {:>28} {:>12} {:>10.2} {:>8}",
                            s,
                            d,
                            name,
                            stats.total_bytes(),
                            elapsed,
                            stats.rounds
                        );
                    }
                    Err(e) => println!("{s:<10} {d:>6} {name:>28}  FAILED: {e}"),
                }
            }
        }
    }
    println!("\npaper's claim: for large u, communication ascends naive > IBLT-of-IBLTs >");
    println!("cascading (> multi-round in the d·log u term), while computation descends in");
    println!("the same order among the one-round protocols.");
}

/// E-F1: Figure 1.
fn figure1() {
    header("Figure 1 (reproduced): the union of unlabeled graphs is ambiguous");
    let (g_a, g_b) = general::figure1_instance();
    let (m1, m2) = general::figure1_merges();
    println!("G_A edges: {:?}   G_B edges: {:?}", g_a.edges(), g_b.edges());
    println!("merge option 1 edges: {:?}", m1.edges());
    println!("merge option 2 edges: {:?}", m2.edges());
    println!("options isomorphic to each other: {}", m1.is_isomorphic_bruteforce(&m2));
}

/// E-2.2: IBLT set reconciliation scaling.
fn set_scaling() {
    header("E-2.2  set reconciliation (Cor 2.2): bytes and time vs d  (n = 100,000)");
    println!("{:>8} {:>12} {:>10}", "d", "bytes", "ms");
    for &d in &[1usize, 4, 16, 64, 256, 1024] {
        let (alice, bob) = set_pair(100_000, d, d as u64 + 1);
        let start = Instant::now();
        let outcome = reconcile_known(&alice, &bob, d.max(1), 7).expect("reconcile");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.recovered, alice);
        println!("{:>8} {:>12} {:>10.2}", d, outcome.stats.total_bytes(), ms);
    }
}

/// E-2.3: characteristic-polynomial scaling.
fn charpoly_scaling() {
    header("E-2.3  charpoly reconciliation (Thm 2.3): bytes and time vs d  (n = 5,000)");
    println!("{:>8} {:>12} {:>12} {:>14}", "d", "bytes", "ms", "iblt bytes");
    for &d in &[1usize, 4, 16, 64, 128] {
        let (alice, bob) = set_pair(5_000, d, 40 + d as u64);
        let start = Instant::now();
        let poly = reconcile_known_charpoly(&alice, &bob, d.max(1), 3).expect("charpoly");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let iblt = reconcile_known(&alice, &bob, d.max(1), 3).expect("iblt");
        assert_eq!(poly.recovered, alice);
        println!(
            "{:>8} {:>12} {:>12.2} {:>14}",
            d,
            poly.stats.total_bytes(),
            ms,
            iblt.stats.total_bytes()
        );
    }
}

/// E-3.1: estimator accuracy and size.
fn estimator_accuracy() {
    header("E-3.1  set difference estimators: estimate/true ratio and sketch size");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "true d", "l0 estimate", "strata est.", "l0 bytes", "strata bytes"
    );
    for &d in &[4usize, 16, 64, 256, 1024, 8192] {
        let (alice, bob) = set_pair(50_000, d, 900 + d as u64);
        let l0_cfg = L0Config::default().with_seed(1);
        let strata_cfg = StrataConfig::default().with_seed(1);
        let mut a_l0 = L0Estimator::new(&l0_cfg);
        let mut b_l0 = L0Estimator::new(&l0_cfg);
        let mut a_st = StrataEstimator::new(&strata_cfg);
        let mut b_st = StrataEstimator::new(&strata_cfg);
        for &x in &alice {
            a_l0.update(x, Side::A);
            a_st.update(x, Side::A);
        }
        for &x in &bob {
            b_l0.update(x, Side::B);
            b_st.update(x, Side::B);
        }
        let l0 = a_l0.merge(&b_l0).unwrap();
        let st = a_st.merge(&b_st).unwrap();
        println!(
            "{:>8} {:>14} {:>14} {:>12} {:>12}",
            d,
            l0.estimate(),
            st.estimate(),
            l0.serialized_len(),
            st.serialized_len()
        );
    }
}

/// E-3.3 / 3.5 / 3.7 / 3.9: the set-of-sets protocol sweep.
fn sos_sweep() {
    header("E-3.x  set-of-sets protocols: bytes vs d  (s = 512, h = 16 and h = 64)");
    println!(
        "{:>6} {:>6} {:>14} {:>18} {:>14} {:>16}",
        "h", "d", "naive", "IBLT-of-IBLTs", "cascading", "multi-round"
    );
    for &h in &[16usize, 64] {
        let workload = WorkloadParams::new(512, h, 1 << 40);
        let params = SosParams::new(5, h);
        for &d in &[1usize, 4, 16, 64] {
            let (alice, bob) = generate_pair(&workload, d, (h * 1000 + d) as u64);
            let naive_b = naive::run_known(&alice, &bob, d, &params).map(|o| o.stats.total_bytes());
            let flat_b = iblt_of_iblts::run_known(&alice, &bob, d, d, &params)
                .map(|o| o.stats.total_bytes());
            let casc_b =
                cascading::run_known(&alice, &bob, d, &params).map(|o| o.stats.total_bytes());
            let multi_b =
                multiround::run_known(&alice, &bob, d, d, &params).map(|o| o.stats.total_bytes());
            println!(
                "{:>6} {:>6} {:>14} {:>18} {:>14} {:>16}",
                h,
                d,
                naive_b.map(|b| b.to_string()).unwrap_or_else(|e| format!("{e}")),
                flat_b.map(|b| b.to_string()).unwrap_or_else(|e| format!("{e}")),
                casc_b.map(|b| b.to_string()).unwrap_or_else(|e| format!("{e}")),
                multi_b.map(|b| b.to_string()).unwrap_or_else(|e| format!("{e}")),
            );
        }
    }
}

/// E-5.3: empirical separation probability.
fn separation_probability() {
    header("E-5.3  empirical probability that G(n,p) is (h, d+1, 2d+1)-separated  (d = 2)");
    println!(
        "{:>8} {:>8} {:>6} {:>22} {:>22}",
        "n", "p", "h", "deg-order separated", "deg-nbhd disjoint>=4d+1"
    );
    let d = 2usize;
    for &(n, p) in &[(128usize, 0.3f64), (256, 0.3), (256, 0.1), (512, 0.1)] {
        let h = degree_order::recommended_h(n, p, d, 0.25).max(8);
        let trials = 10;
        let mut separated = 0;
        let mut disjoint = 0;
        for t in 0..trials {
            let mut rng = Xoshiro256::new((n * 31 + t) as u64);
            let g = Graph::gnp(n, p, &mut rng);
            if degree_order::is_separated(&g, h, d + 1, 2 * d + 1) {
                separated += 1;
            }
            let cap = ((n as f64) * p).ceil() as usize + 1;
            #[allow(clippy::int_plus_one)] // written as the paper's (m, 4d+1)-disjoint bound
            if degree_neighborhood::min_disjointness(&g, cap) >= 4 * d + 1 {
                disjoint += 1;
            }
        }
        println!(
            "{:>8} {:>8.2} {:>6} {:>20}/{} {:>20}/{}",
            n, p, h, separated, trials, disjoint, trials
        );
    }
    println!("\npaper's claim: both separations hold with high probability only for much");
    println!("larger n (Thm 5.3 needs p >= C d log n (d^2/(delta^2 n))^(1/7)); at laptop scale");
    println!("failures are common and must be *detected* by the protocols, never silent.");
}

/// E-5.2 / E-5.6: graph reconciliation success and communication.
fn graph_reconciliation() {
    header("E-5.2/5.6  random-graph reconciliation: success rate and bytes");
    println!(
        "{:>22} {:>6} {:>8} {:>6} {:>10} {:>14}",
        "scheme", "n", "p", "d", "success", "median bytes"
    );
    let trials = 5u64;
    for &(n, p, d) in &[(192usize, 0.35f64, 2usize), (256, 0.35, 4)] {
        let mut ok = 0;
        let mut bytes = Vec::new();
        for t in 0..trials {
            let mut rng = Xoshiro256::new(n as u64 * 97 + t);
            let base = Graph::gnp(n, p, &mut rng);
            let alice = base.perturb(d / 2, &mut rng);
            let bob = base.perturb(d - d / 2, &mut rng);
            let params = DegreeOrderParams { h: 48.min(n / 4), seed: t };
            if let Ok(recon_protocol::Outcome { recovered: rec, stats }) =
                degree_order::reconcile(&alice, &bob, d, &params)
            {
                if rec.num_edges() == alice.num_edges() {
                    ok += 1;
                    bytes.push(stats.total_bytes());
                }
            }
        }
        bytes.sort_unstable();
        println!(
            "{:>22} {:>6} {:>8.2} {:>6} {:>8}/{} {:>14}",
            "degree-order (5.2)",
            n,
            p,
            d,
            ok,
            trials,
            bytes.get(bytes.len() / 2).copied().unwrap_or(0)
        );
    }
    for &(n, p, d) in &[(256usize, 0.2f64, 2usize), (320, 0.15, 2)] {
        let mut ok = 0;
        let mut bytes = Vec::new();
        for t in 0..trials {
            let mut rng = Xoshiro256::new(n as u64 * 131 + t);
            let base = Graph::gnp(n, p, &mut rng);
            let alice = base.perturb(d / 2, &mut rng);
            let bob = base.perturb(d - d / 2, &mut rng);
            let params = DegreeNeighborhoodParams::for_gnp(n, p, t);
            if let Ok(recon_protocol::Outcome { recovered: rec, stats }) =
                degree_neighborhood::reconcile(&alice, &bob, d, &params)
            {
                if rec.num_edges() == alice.num_edges() {
                    ok += 1;
                    bytes.push(stats.total_bytes());
                }
            }
        }
        bytes.sort_unstable();
        println!(
            "{:>22} {:>6} {:>8.2} {:>6} {:>8}/{} {:>14}",
            "degree-nbhd (5.6)",
            n,
            p,
            d,
            ok,
            trials,
            bytes.get(bytes.len() / 2).copied().unwrap_or(0)
        );
    }
    println!("\npaper's claim: the degree-neighborhood scheme works for much sparser graphs but");
    println!("pays roughly a pn factor more communication than the degree-ordering scheme.");
}

/// E-4.1 / E-4.3: general graphs.
fn general_graphs() {
    header("E-4.1/4.3  general-graph protocols on tiny instances (n = 7)");
    let mut rng = Xoshiro256::new(9);
    let base = Graph::gnp(7, 0.4, &mut rng);
    let relabeled = base.relabel(&[6, 5, 4, 3, 2, 1, 0]);
    let (iso, stats) = general::isomorphism_protocol(&base, &relabeled, 3);
    println!("isomorphism fingerprint: verdict = {iso}, {stats}");
    println!("{:>4} {:>14} {:>12}", "d", "bytes", "ms");
    for d in [1usize, 2] {
        let alice = base.perturb(d, &mut rng);
        let start = Instant::now();
        let (result, stats) = general::reconcile_exhaustive(&alice, &base, d, 5);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let ok = result.map(|g| g.is_isomorphic_bruteforce(&alice)).unwrap_or(false);
        println!(
            "{:>4} {:>14} {:>12.2}   recovered isomorphic copy: {ok}",
            d,
            stats.total_bytes(),
            ms
        );
    }
    println!(
        "\npaper's claim: O(d log n) bits but exponential time — the reason Section 5 exists."
    );
}

/// E-6.1: forest reconciliation.
fn forest_scaling() {
    header("E-6.1  forest reconciliation: bytes vs d and sigma  (n = 5,000)");
    println!("{:>6} {:>8} {:>12} {:>10} {:>12}", "d", "sigma", "bytes", "ms", "isomorphic");
    let mut rng = Xoshiro256::new(13);
    for &sigma in &[4usize, 8, 16] {
        let base = Forest::random(5_000, 0.08, sigma, &mut rng);
        for &d in &[1usize, 4, 16] {
            let alice = base.perturb(d / 2, &mut rng);
            let bob = base.perturb(d - d / 2, &mut rng);
            let bound_sigma = alice.max_depth().max(bob.max_depth()).max(1);
            let start = Instant::now();
            match forest::reconcile(&alice, &bob, d, bound_sigma, 7) {
                Ok(recon_protocol::Outcome { recovered, stats }) => {
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    println!(
                        "{:>6} {:>8} {:>12} {:>10.2} {:>12}",
                        d,
                        bound_sigma,
                        stats.total_bytes(),
                        ms,
                        recovered.is_isomorphic(&alice, 7)
                    );
                }
                Err(e) => println!("{d:>6} {bound_sigma:>8}   FAILED: {e}"),
            }
        }
    }
    println!("\npaper's claim: communication O(d sigma log(d sigma) log n), independent of n.");
}
